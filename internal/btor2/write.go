package btor2

import (
	"bufio"
	"fmt"
	"io"

	"emmver/internal/aig"
)

// Write serializes a netlist as BTOR2. Combinational logic is exported at
// the bit level (1-bit sorts, and/not), latches become 1-bit states, and
// memory modules become array states with read nodes and write-chain next
// functions — so the output remains a *word-level* memory model that
// BTOR2 tools solve with array reasoning rather than bit-blasting.
func Write(w io.Writer, n *aig.Netlist) error {
	bw := bufio.NewWriter(w)
	e := &emitter{n: n, w: bw, lit: map[aig.Lit]int64{}}

	e.bit1 = e.emit("sort bitvec 1")
	e.lit[aig.False] = e.emit("zero %d", e.bit1)
	e.lit[aig.True] = e.emit("one %d", e.bit1)

	// Inputs.
	for _, id := range n.Inputs {
		name := n.InputName(id)
		if name == "" {
			e.lit[aig.MkLit(id, false)] = e.emit("input %d", e.bit1)
		} else {
			e.lit[aig.MkLit(id, false)] = e.emit("input %d %s", e.bit1, sanitize(name))
		}
	}
	// Latches as 1-bit states.
	for _, l := range n.Latches {
		s := e.emit("state %d %s", e.bit1, sanitize(nameOr(l.Name, fmt.Sprintf("l%d", l.Node))))
		e.lit[aig.MkLit(l.Node, false)] = s
		switch l.Init {
		case aig.Init0:
			e.emit("init %d %d %d", e.bit1, s, e.lit[aig.False])
		case aig.Init1:
			e.emit("init %d %d %d", e.bit1, s, e.lit[aig.True])
		}
	}
	// Memories as array states (declared before any read).
	type memInfo struct {
		arr       int64
		addrSort  int64
		elemSort  int64
		arraySort int64
	}
	mems := make([]memInfo, len(n.Memories))
	for mi, m := range n.Memories {
		if m.Init == aig.MemImage {
			return fmt.Errorf("btor2: image-initialized memories are not supported")
		}
		mi2 := memInfo{
			addrSort: e.sortBV(m.AW),
			elemSort: e.sortBV(m.DW),
		}
		mi2.arraySort = e.emit("sort array %d %d", mi2.addrSort, mi2.elemSort)
		mi2.arr = e.emit("state %d %s", mi2.arraySort, sanitize(nameOr(m.Name, fmt.Sprintf("mem%d", mi))))
		if m.Init == aig.MemZero {
			z := e.emit("zero %d", mi2.elemSort)
			e.emit("init %d %d %d", mi2.arraySort, mi2.arr, z)
		}
		mems[mi] = mi2
	}
	// Read ports: word-level read + per-bit slices.
	for mi, m := range n.Memories {
		for _, rp := range m.Reads {
			addr := e.word(rp.Addr, mems[mi].addrSort)
			rd := e.emit("read %d %d %d", mems[mi].elemSort, mems[mi].arr, addr)
			for b, dn := range rp.Data {
				if m.DW == 1 {
					e.lit[aig.MkLit(dn, false)] = rd
				} else {
					e.lit[aig.MkLit(dn, false)] = e.emit("slice %d %d %d %d", e.bit1, rd, b, b)
				}
			}
		}
	}
	// Latch next functions.
	for _, l := range n.Latches {
		nx := e.litRef(l.Next)
		e.emit("next %d %d %d", e.bit1, e.lit[aig.MkLit(l.Node, false)], nx)
	}
	// Memory next functions: write chains, later ports outermost (they
	// win same-cycle races, matching eq. 4's tie-break).
	for mi, m := range n.Memories {
		cur := mems[mi].arr
		for _, wp := range m.Writes {
			addr := e.word(wp.Addr, mems[mi].addrSort)
			data := e.word(wp.Data, mems[mi].elemSort)
			wr := e.emit("write %d %d %d %d", mems[mi].arraySort, cur, addr, data)
			en := e.litRef(wp.En)
			cur = e.emit("ite %d %d %d %d", mems[mi].arraySort, en, wr, cur)
		}
		if cur != mems[mi].arr {
			e.emit("next %d %d %d", mems[mi].arraySort, mems[mi].arr, cur)
		}
	}
	// Properties and constraints.
	for _, p := range n.Props {
		bad := e.litRef(p.OK.Not())
		e.emit("bad %d %s", bad, sanitize(nameOr(p.Name, "")))
	}
	for _, c := range n.Constraints {
		e.emit("constraint %d", e.litRef(c))
	}
	if e.err != nil {
		return e.err
	}
	return bw.Flush()
}

type emitter struct {
	n    *aig.Netlist
	w    *bufio.Writer
	next int64
	bit1 int64
	lit  map[aig.Lit]int64 // netlist literal -> btor2 node id
	bv   map[int]int64     // width -> sort id
	err  error
}

func (e *emitter) emit(format string, args ...interface{}) int64 {
	e.next++
	if _, err := fmt.Fprintf(e.w, "%d "+format+"\n", append([]interface{}{e.next}, args...)...); err != nil && e.err == nil {
		e.err = err
	}
	return e.next
}

func (e *emitter) sortBV(w int) int64 {
	if e.bv == nil {
		e.bv = map[int]int64{1: e.bit1}
	}
	if id, ok := e.bv[w]; ok {
		return id
	}
	id := e.emit("sort bitvec %d", w)
	e.bv[w] = id
	return id
}

// litRef resolves a netlist literal, materializing AND gates and
// inversions on demand.
func (e *emitter) litRef(l aig.Lit) int64 {
	if id, ok := e.lit[l]; ok {
		return id
	}
	// Resolve the plain polarity first.
	plain := aig.MkLit(l.Node(), false)
	id, ok := e.lit[plain]
	if !ok {
		node := e.n.NodeAt(l.Node())
		if node.Kind != aig.KAnd {
			panic(fmt.Sprintf("btor2: unresolved %v node %d", node.Kind, l.Node()))
		}
		a := e.litRef(node.F0)
		b := e.litRef(node.F1)
		id = e.emit("and %d %d %d", e.bit1, a, b)
		e.lit[plain] = id
	}
	if !l.Inverted() {
		return id
	}
	inv := e.emit("not %d %d", e.bit1, id)
	e.lit[l] = inv
	return inv
}

// word packs a bit bus into a BTOR2 word via concat (MSB-first operand
// order).
func (e *emitter) word(bits []aig.Lit, sortID int64) int64 {
	cur := e.litRef(bits[0])
	curW := 1
	for i := 1; i < len(bits); i++ {
		hi := e.litRef(bits[i])
		cur = e.emit("concat %d %d %d", e.sortBV(curW+1), hi, cur)
		curW++
	}
	_ = sortID
	return cur
}

func nameOr(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ' ' || c == '\t' || c == ';' {
			c = '_'
		}
		out = append(out, c)
	}
	return string(out)
}
