package btor2

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"emmver/internal/aig"
	"emmver/internal/bmc"
	"emmver/internal/designs"
	"emmver/internal/rtl"
	"emmver/internal/sim"
)

func TestReadCounter(t *testing.T) {
	src := `
; 3-bit counter, bad when it reaches 5
1 sort bitvec 3
2 zero 1
3 state 1 cnt
4 init 1 3 2
5 one 1
6 add 1 3 5
7 next 1 3 6
8 constd 1 5
9 eq 1 3 8
10 bad 9
`
	n, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Latches) != 3 || len(n.Props) != 1 {
		t.Fatalf("structure wrong: %s", n.Stats())
	}
	r := bmc.Check(n, 0, bmc.Options{MaxDepth: 10})
	if r.Kind != bmc.KindCE || r.Depth != 5 {
		t.Fatalf("counter verdict wrong: %v", r)
	}
}

func TestReadArrayMemory(t *testing.T) {
	// A memory written from inputs; bad when a read returns 7.
	src := `
1 sort bitvec 2
2 sort bitvec 3
3 sort array 1 2
4 state 3 mem
5 zero 2
6 init 3 4 5
7 input 1 waddr
8 input 2 wdata
9 input 1 we_raw
10 slice 1 9 0 0   ; 1-bit enable  (sort id 10 reuses? no: declares)
`
	// The slice trick above is awkward; write the enable as a 1-bit input
	// instead.
	src = `
1 sort bitvec 2
2 sort bitvec 3
3 sort array 1 2
4 state 3 mem
5 zero 2
6 init 3 4 5
7 input 1 waddr
8 input 2 wdata
9 sort bitvec 1
10 input 9 we
11 write 3 4 7 8
12 ite 3 10 11 4
13 next 3 4 12
14 input 1 raddr
15 read 2 4 14
16 constd 2 7
17 eq 9 15 16
18 bad 17
`
	n, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Memories) != 1 {
		t.Fatalf("memory not inferred")
	}
	m := n.Memories[0]
	if m.AW != 2 || m.DW != 3 || m.Init != aig.MemZero {
		t.Fatalf("memory geometry wrong")
	}
	if len(m.Writes) != 1 || len(m.Reads) != 1 {
		t.Fatalf("ports wrong: %dW %dR", len(m.Writes), len(m.Reads))
	}
	// EMM: reachable (write 7, read it back) at depth 1.
	r := bmc.Check(n, 0, bmc.Options{MaxDepth: 5, UseEMM: true, ValidateWitness: true})
	if r.Kind != bmc.KindCE || r.Depth != 1 {
		t.Fatalf("verdict wrong: %v", r)
	}
}

func TestReadArbitraryInitArray(t *testing.T) {
	src := `
1 sort bitvec 2
2 sort bitvec 4
3 sort array 1 2
4 state 3 mem
5 input 1 addr
6 read 2 4 5
7 constd 2 9
8 eq 2 6 7
9 sort bitvec 1
10 slice 9 8 0 0
11 bad 10
`
	n, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if n.Memories[0].Init != aig.MemArbitrary {
		t.Fatalf("uninitialized array must be arbitrary")
	}
	r := bmc.Check(n, 0, bmc.Options{MaxDepth: 3, UseEMM: true, ValidateWitness: true})
	if r.Kind != bmc.KindCE || r.Depth != 0 {
		t.Fatalf("arbitrary contents make 9 readable at depth 0: %v", r)
	}
}

func TestReadOperators(t *testing.T) {
	// Exercise the expression evaluator: bad fires iff the ALU identity
	// (a+b)-b == a is violated — i.e., never.
	src := `
1 sort bitvec 4
2 input 1 a
3 input 1 b
4 add 1 2 3
5 sub 1 4 3
6 neq 1 5 2
7 sort bitvec 1
8 slice 7 6 0 0
9 bad 8
`
	n, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	r := bmc.Check(n, 0, bmc.BMC1(4))
	if r.Kind != bmc.KindProof {
		t.Fatalf("identity must be proved: %v", r)
	}
}

func TestReadNegatedRefsAndConstraint(t *testing.T) {
	src := `
1 sort bitvec 1
2 input 1 x
3 state 1 s
4 zero 1
5 init 1 3 4
6 or 1 3 2
7 next 1 3 6
8 constraint -2
9 bad 3
`
	n, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	// With x constrained to 0, s stays 0: the bad state is unreachable.
	r := bmc.Check(n, 0, bmc.BMC1(10))
	if r.Kind != bmc.KindProof {
		t.Fatalf("constrained design must be proved: %v", r)
	}
}

func TestReadErrors(t *testing.T) {
	for _, bad := range []string{
		"x sort bitvec 1\n",
		"1 sort bitvec 0\n",
		"1 sort frob 3\n",
		"1 sort bitvec 1\n2 frobnicate 1\n3 bad 2\n",
		"1 sort bitvec 1\n2 state 1\n3 init 1 2 2\n", // non-const init
		"1 sort bitvec 2\n2 sort array 1 1\n3 state 2 m\n4 input 1 a\n5 next 2 3 4\n", // bad array next
	} {
		if _, err := Read(strings.NewReader(bad)); err == nil {
			t.Fatalf("input %q must fail", bad)
		}
	}
}

// roundtrip tests: netlist -> btor2 -> netlist behavioral equivalence.
func TestRoundtripMemoryDesign(t *testing.T) {
	m := rtl.NewModule("rt")
	mem := m.Memory("mem", 2, 3, aig.MemZero)
	mem.Write(m.Input("wa", 2), m.Input("wd", 3), m.InputBit("we"))
	rd := mem.Read(m.Input("ra", 2), aig.True)
	acc := m.Register("acc", 3, 0)
	acc.SetNext(m.XorV(acc.Q, rd))
	m.Done(acc)
	for _, l := range acc.Q {
		m.AssertAlways("acc", l)
	}

	var buf bytes.Buffer
	if err := Write(&buf, m.N); err != nil {
		t.Fatal(err)
	}
	back, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if len(back.Memories) != 1 || back.Memories[0].AW != 2 || back.Memories[0].DW != 3 {
		t.Fatalf("memory lost in roundtrip")
	}
	// Cross-simulate.
	s1, s2 := sim.New(m.N), sim.New(back)
	rng := rand.New(rand.NewSource(12))
	for c := 0; c < 60; c++ {
		in1 := make(map[aig.NodeID]bool)
		in2 := make(map[aig.NodeID]bool)
		for i := range m.N.Inputs {
			v := rng.Intn(2) == 1
			in1[m.N.Inputs[i]] = v
			in2[back.Inputs[i]] = v
		}
		r1 := s1.Step(in1)
		r2 := s2.Step(in2)
		for p := range r1.PropOK {
			if r1.PropOK[p] != r2.PropOK[p] {
				t.Fatalf("cycle %d prop %d mismatch\n%s", c, p, buf.String())
			}
		}
	}
}

func TestRoundtripVerdicts(t *testing.T) {
	m := rtl.NewModule("rt2")
	c := m.Register("c", 3, 0)
	wrap := m.EqConst(c.Q, 4)
	c.SetNext(m.MuxV(wrap, m.Const(3, 0), m.Inc(c.Q)))
	m.Done(c)
	m.AssertAlways("ne3", m.EqConst(c.Q, 3).Not())
	m.AssertAlways("ne6", m.EqConst(c.Q, 6).Not())

	var buf bytes.Buffer
	if err := Write(&buf, m.N); err != nil {
		t.Fatal(err)
	}
	back, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r := bmc.Check(back, 0, bmc.BMC1(20)); r.Kind != bmc.KindCE || r.Depth != 3 {
		t.Fatalf("prop0: %v", r)
	}
	if r := bmc.Check(back, 1, bmc.BMC1(20)); r.Kind != bmc.KindProof {
		t.Fatalf("prop1: %v", r)
	}
}

func TestRoundtripMultiPortRace(t *testing.T) {
	// Same-cycle same-address writes: the race tie-break (higher port
	// wins) must survive the roundtrip.
	m := rtl.NewModule("race")
	mem := m.Memory("mem", 1, 4, aig.MemZero)
	addr := m.Const(1, 0)
	mem.Write(addr, m.Const(4, 5), aig.True)
	mem.Write(addr, m.Const(4, 9), aig.True)
	rd := mem.Read(addr, aig.True)
	got9 := m.BitReg("got9", false)
	got9.UpdateBit(m.EqConst(rd, 9), aig.True)
	m.Done(got9)
	m.AssertAlways("sees9", got9.Bit().Not()) // CE at depth 2 proves 9 won

	var buf bytes.Buffer
	if err := Write(&buf, m.N); err != nil {
		t.Fatal(err)
	}
	back, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	r := bmc.Check(back, 0, bmc.Options{MaxDepth: 5, UseEMM: true, ValidateWitness: true})
	if r.Kind != bmc.KindCE {
		t.Fatalf("race winner lost in roundtrip: %v", r)
	}
}

func TestWriteQuicksortParses(t *testing.T) {
	// The full quicksort machine (two arbitrary-init memories) must
	// export and re-import, preserving the P1 proof.
	m := rtl.NewModule("q")
	_ = m
	q := buildTinyQuicksort()
	var buf bytes.Buffer
	if err := Write(&buf, q); err != nil {
		t.Fatal(err)
	}
	back, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	r := bmc.Check(back, 0, bmc.BMC3(120))
	if r.Kind != bmc.KindProof {
		t.Fatalf("P1 must survive the roundtrip: %v", r)
	}
}

// buildTinyQuicksort constructs the quicksort case study at tiny widths.
func buildTinyQuicksort() *aig.Netlist {
	q := designs.NewQuickSort(designs.QuickSortConfig{N: 3, ArrayAW: 2, DataW: 3, StackAW: 2})
	return q.Netlist()
}
