// Package btor2 reads and writes a subset of the BTOR2 word-level
// model-checking format (Niemetz, Preiner, Wolf, Biere — CAV 2018). BTOR2
// is the natural modern interchange for this library because it has
// first-class *array* sorts: BTOR2 array states map directly onto embedded
// memory modules, `read` nodes onto read ports, and `write`-shaped next
// functions onto write ports — so HWMCC-style memory benchmarks can be
// verified with EMM instead of bit-blasted array expansion.
//
// Supported node kinds:
//
//	sort bitvec/array, input, state, init, next, bad, constraint, output,
//	const/constd/consth/zero/one/ones,
//	not/and/or/xor/nand/nor/xnor/neg/redand/redor/redxor/implies/iff,
//	add/sub/mul/eq/neq/ult/ulte/ugt/ugte/slice/concat/uext/ite/sll/srl,
//	read/write.
//
// Array restrictions: an array state's next function must be the state
// itself, a (possibly nested) write to it, or an ite choosing between
// such writes and the state — the patterns synthesizable hardware
// produces. Array inits must be a constant 0 (zeroed memory) or absent
// (arbitrary contents).
package btor2

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"emmver/internal/aig"
	"emmver/internal/rtl"
)

// node is a parsed BTOR2 line.
type node struct {
	id   int64
	kind string
	args []int64 // raw operand ids (sign encodes negation for bitvecs)
	sort int64
	str  string // constant payload or symbol
	line int
}

type sort struct {
	isArray   bool
	width     int   // bitvec width
	idx, elem int64 // array sorts
}

// Read parses BTOR2 text into a netlist.
func Read(r io.Reader) (*aig.Netlist, error) {
	p := &parser{
		m:      rtl.NewModule("btor2"),
		sorts:  map[int64]sort{},
		nodes:  map[int64]*node{},
		vals:   map[int64]rtl.Vec{},
		arrays: map[int64]*arrayState{},
	}
	if err := p.parse(r); err != nil {
		return nil, err
	}
	if err := p.build(); err != nil {
		return nil, err
	}
	return p.m.N, nil
}

type arrayState struct {
	def    *node
	mem    *rtl.Mem
	aw, dw int
	nextID int64 // raw id of the next function (0 if none)
}

type parser struct {
	m      *rtl.Module
	sorts  map[int64]sort
	nodes  map[int64]*node
	order  []*node
	vals   map[int64]rtl.Vec
	arrays map[int64]*arrayState
	regs   map[int64]*rtl.Reg
	inits  map[int64]*node // state id -> init node
	nexts  map[int64]*node // state id -> next node
	bads   []*node
	constr []*node
}

func (p *parser) parse(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		id, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil || id <= 0 {
			return fmt.Errorf("btor2 line %d: bad node id %q", lineNo, fields[0])
		}
		if len(fields) < 2 {
			return fmt.Errorf("btor2 line %d: missing kind", lineNo)
		}
		n := &node{id: id, kind: fields[1], line: lineNo}
		rest := fields[2:]

		switch n.kind {
		case "sort":
			if len(rest) < 2 {
				return fmt.Errorf("btor2 line %d: short sort", lineNo)
			}
			switch rest[0] {
			case "bitvec":
				w, err := strconv.Atoi(rest[1])
				if err != nil || w <= 0 || w > 64 {
					return fmt.Errorf("btor2 line %d: bad bitvec width", lineNo)
				}
				p.sorts[id] = sort{width: w}
			case "array":
				if len(rest) < 3 {
					return fmt.Errorf("btor2 line %d: short array sort", lineNo)
				}
				idx, err1 := strconv.ParseInt(rest[1], 10, 64)
				elem, err2 := strconv.ParseInt(rest[2], 10, 64)
				if err1 != nil || err2 != nil {
					return fmt.Errorf("btor2 line %d: bad array sort", lineNo)
				}
				p.sorts[id] = sort{isArray: true, idx: idx, elem: elem}
			default:
				return fmt.Errorf("btor2 line %d: unknown sort %q", lineNo, rest[0])
			}
			continue
		case "const", "constd", "consth":
			if len(rest) < 2 {
				return fmt.Errorf("btor2 line %d: short constant", lineNo)
			}
			n.sort, _ = strconv.ParseInt(rest[0], 10, 64)
			n.str = rest[1]
		case "zero", "one", "ones":
			if len(rest) < 1 {
				return fmt.Errorf("btor2 line %d: short constant", lineNo)
			}
			n.sort, _ = strconv.ParseInt(rest[0], 10, 64)
		case "input", "state":
			if len(rest) < 1 {
				return fmt.Errorf("btor2 line %d: short decl", lineNo)
			}
			n.sort, _ = strconv.ParseInt(rest[0], 10, 64)
			if len(rest) > 1 {
				n.str = rest[1]
			}
		case "bad", "constraint", "output", "fair", "justice":
			for _, f := range rest {
				v, err := strconv.ParseInt(f, 10, 64)
				if err != nil {
					break // trailing symbol
				}
				n.args = append(n.args, v)
			}
		default:
			// Operation: sort followed by operands (slice carries two
			// trailing integers that are not node ids but bounds; keep
			// them as args too).
			if len(rest) < 1 {
				return fmt.Errorf("btor2 line %d: short op", lineNo)
			}
			n.sort, err = strconv.ParseInt(rest[0], 10, 64)
			if err != nil {
				return fmt.Errorf("btor2 line %d: bad sort ref", lineNo)
			}
			for _, f := range rest[1:] {
				v, err := strconv.ParseInt(f, 10, 64)
				if err != nil {
					break // symbol
				}
				n.args = append(n.args, v)
			}
		}
		p.nodes[id] = n
		p.order = append(p.order, n)
	}
	return sc.Err()
}

// build performs the second pass: declare states, evaluate bitvec
// expressions, infer memory ports, wire nexts/inits, register properties.
func (p *parser) build() error {
	p.regs = map[int64]*rtl.Reg{}
	p.inits = map[int64]*node{}
	p.nexts = map[int64]*node{}

	// Index init/next/bad/constraint.
	for _, n := range p.order {
		switch n.kind {
		case "init":
			if len(n.args) < 2 {
				return fmt.Errorf("btor2 line %d: short init", n.line)
			}
			p.inits[n.args[0]] = n
		case "next":
			if len(n.args) < 2 {
				return fmt.Errorf("btor2 line %d: short next", n.line)
			}
			p.nexts[n.args[0]] = n
		case "bad":
			p.bads = append(p.bads, n)
		case "constraint":
			p.constr = append(p.constr, n)
		}
	}

	// Declare inputs, states, and memories in order.
	for _, n := range p.order {
		switch n.kind {
		case "input":
			s, err := p.bvSort(n)
			if err != nil {
				return err
			}
			name := n.str
			if name == "" {
				name = fmt.Sprintf("in%d", n.id)
			}
			p.vals[n.id] = p.m.Input(name, s.width)
		case "state":
			s, ok := p.sorts[n.sort]
			if !ok {
				return fmt.Errorf("btor2 line %d: unknown sort %d", n.line, n.sort)
			}
			if s.isArray {
				if err := p.declareArray(n, s); err != nil {
					return err
				}
				continue
			}
			name := n.str
			if name == "" {
				name = fmt.Sprintf("s%d", n.id)
			}
			init, hasInit := p.inits[n.id]
			var reg *rtl.Reg
			switch {
			case !hasInit:
				reg = p.m.RegisterX(name, s.width)
			default:
				cv, ok := p.constValueOf(init.args[1])
				if !ok {
					return fmt.Errorf("btor2 line %d: non-constant state init is not supported", init.line)
				}
				reg = p.m.Register(name, s.width, cv)
			}
			p.regs[n.id] = reg
			p.vals[n.id] = reg.Q
		}
	}

	// Evaluate everything else on demand; then wire nexts.
	for id, reg := range p.regs {
		nx, ok := p.nexts[id]
		if !ok {
			reg.SetNext(reg.Q) // stateless hold
			continue
		}
		v, err := p.value(nx.args[1])
		if err != nil {
			return err
		}
		reg.SetNext(p.adapt(v, len(reg.Q)))
	}
	for id, as := range p.arrays {
		if as.nextID == 0 {
			continue
		}
		if err := p.buildArrayNext(id, as); err != nil {
			return err
		}
	}
	var regs []*rtl.Reg
	for _, n := range p.order {
		if r, ok := p.regs[n.id]; ok {
			regs = append(regs, r)
		}
	}
	p.m.Done(regs...)

	for i, b := range p.bads {
		v, err := p.value(b.args[0])
		if err != nil {
			return err
		}
		p.m.AssertAlways(fmt.Sprintf("bad%d", i), p.m.NonZero(v).Not())
	}
	for _, c := range p.constr {
		v, err := p.value(c.args[0])
		if err != nil {
			return err
		}
		p.m.Assume(p.m.NonZero(v))
	}
	return nil
}

func (p *parser) bvSort(n *node) (sort, error) {
	s, ok := p.sorts[n.sort]
	if !ok || s.isArray {
		return sort{}, fmt.Errorf("btor2 line %d: expected bitvec sort", n.line)
	}
	return s, nil
}

func (p *parser) declareArray(n *node, s sort) error {
	idxS, ok1 := p.sorts[s.idx]
	elemS, ok2 := p.sorts[s.elem]
	if !ok1 || !ok2 || idxS.isArray || elemS.isArray {
		return fmt.Errorf("btor2 line %d: bad array sort", n.line)
	}
	name := n.str
	if name == "" {
		name = fmt.Sprintf("mem%d", n.id)
	}
	init := aig.MemArbitrary
	if iv, hasInit := p.inits[n.id]; hasInit {
		cv, ok := p.constValueOf(iv.args[1])
		if !ok || cv != 0 {
			return fmt.Errorf("btor2 line %d: array init must be constant 0", iv.line)
		}
		init = aig.MemZero
	}
	as := &arrayState{
		def: n,
		mem: p.m.Memory(name, idxS.width, elemS.width, init),
		aw:  idxS.width,
		dw:  elemS.width,
	}
	if nx, ok := p.nexts[n.id]; ok {
		as.nextID = nx.args[1]
	}
	p.arrays[n.id] = as
	return nil
}

// buildArrayNext pattern-matches the array next function into write
// ports. Writes are collected during the walk and installed innermost
// first: in a nested write chain the outermost write is applied last (it
// overrides), and our port semantics give same-cycle priority to the
// highest-indexed port, so the outermost write must get the highest
// index.
func (p *parser) buildArrayNext(stateID int64, as *arrayState) error {
	type pendingWrite struct {
		cond       aig.Lit
		addr, data rtl.Vec
	}
	var writes []pendingWrite // outermost first
	var walk func(id int64, cond aig.Lit) error
	walk = func(id int64, cond aig.Lit) error {
		if id == stateID {
			return nil // unchanged under this condition
		}
		n, ok := p.nodes[id]
		if !ok {
			return fmt.Errorf("btor2: array next references unknown node %d", id)
		}
		switch n.kind {
		case "write":
			// write <sort> <array> <addr> <val>
			if len(n.args) < 3 {
				return fmt.Errorf("btor2 line %d: short write", n.line)
			}
			addr, err := p.value(n.args[1])
			if err != nil {
				return err
			}
			val, err := p.value(n.args[2])
			if err != nil {
				return err
			}
			writes = append(writes, pendingWrite{cond: cond, addr: addr, data: val})
			return walk(n.args[0], cond)
		case "ite":
			// ite <sort> <cond> <then> <else>
			if len(n.args) < 3 {
				return fmt.Errorf("btor2 line %d: short ite", n.line)
			}
			c, err := p.value(n.args[0])
			if err != nil {
				return err
			}
			cb := p.m.NonZero(c)
			if err := walk(n.args[1], p.m.N.And(cond, cb)); err != nil {
				return err
			}
			return walk(n.args[2], p.m.N.And(cond, cb.Not()))
		}
		return fmt.Errorf("btor2 line %d: unsupported array next shape (%s)", n.line, n.kind)
	}
	if err := walk(as.nextID, aig.True); err != nil {
		return err
	}
	for i := len(writes) - 1; i >= 0; i-- {
		w := writes[i]
		as.mem.Write(p.adapt(w.addr, as.aw), p.adapt(w.data, as.dw), w.cond)
	}
	return nil
}

// value evaluates a (possibly negated) bitvec node reference.
func (p *parser) value(ref int64) (rtl.Vec, error) {
	neg := ref < 0
	if neg {
		ref = -ref
	}
	v, err := p.nodeValue(ref)
	if err != nil {
		return nil, err
	}
	if neg {
		v = p.m.NotV(v)
	}
	return v, nil
}

func (p *parser) nodeValue(id int64) (rtl.Vec, error) {
	if v, ok := p.vals[id]; ok {
		return v, nil
	}
	n, ok := p.nodes[id]
	if !ok {
		return nil, fmt.Errorf("btor2: reference to unknown node %d", id)
	}
	v, err := p.eval(n)
	if err != nil {
		return nil, err
	}
	p.vals[id] = v
	return v, nil
}

func (p *parser) constValueOf(ref int64) (uint64, bool) {
	n, ok := p.nodes[ref]
	if !ok {
		return 0, false
	}
	switch n.kind {
	case "zero":
		return 0, true
	case "one":
		return 1, true
	case "ones":
		s := p.sorts[n.sort]
		if s.width == 64 {
			return ^uint64(0), true
		}
		return 1<<uint(s.width) - 1, true
	case "const":
		v, err := strconv.ParseUint(n.str, 2, 64)
		return v, err == nil
	case "constd":
		v, err := strconv.ParseUint(n.str, 10, 64)
		return v, err == nil
	case "consth":
		v, err := strconv.ParseUint(n.str, 16, 64)
		return v, err == nil
	}
	return 0, false
}

func (p *parser) adapt(v rtl.Vec, w int) rtl.Vec {
	if len(v) == w {
		return v
	}
	if len(v) > w {
		return p.m.Truncate(v, w)
	}
	return p.m.ZeroExtend(v, w)
}

func (p *parser) eval(n *node) (rtl.Vec, error) {
	m := p.m
	s, serr := p.bvSort(n)
	w := s.width
	bin := func() (rtl.Vec, rtl.Vec, error) {
		if len(n.args) < 2 {
			return nil, nil, fmt.Errorf("btor2 line %d: short %s", n.line, n.kind)
		}
		a, err := p.value(n.args[0])
		if err != nil {
			return nil, nil, err
		}
		b, err := p.value(n.args[1])
		if err != nil {
			return nil, nil, err
		}
		ww := len(a)
		if len(b) > ww {
			ww = len(b)
		}
		return p.adapt(a, ww), p.adapt(b, ww), nil
	}
	un := func() (rtl.Vec, error) {
		if len(n.args) < 1 {
			return nil, fmt.Errorf("btor2 line %d: short %s", n.line, n.kind)
		}
		return p.value(n.args[0])
	}
	bit := func(l aig.Lit) rtl.Vec { return rtl.Vec{l} }

	switch n.kind {
	case "const":
		if serr != nil {
			return nil, serr
		}
		v, err := strconv.ParseUint(n.str, 2, 64)
		if err != nil {
			return nil, fmt.Errorf("btor2 line %d: bad binary constant", n.line)
		}
		return m.Const(w, v), nil
	case "constd":
		if serr != nil {
			return nil, serr
		}
		v, err := strconv.ParseUint(n.str, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("btor2 line %d: bad decimal constant", n.line)
		}
		return m.Const(w, v), nil
	case "consth":
		if serr != nil {
			return nil, serr
		}
		v, err := strconv.ParseUint(n.str, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("btor2 line %d: bad hex constant", n.line)
		}
		return m.Const(w, v), nil
	case "zero":
		return m.Const(w, 0), nil
	case "one":
		return m.Const(w, 1), nil
	case "ones":
		if w == 64 {
			return m.NotV(m.Const(w, 0)), nil
		}
		return m.Const(w, 1<<uint(w)-1), nil
	case "not":
		a, err := un()
		if err != nil {
			return nil, err
		}
		return m.NotV(a), nil
	case "neg":
		a, err := un()
		if err != nil {
			return nil, err
		}
		return m.Sub(m.Const(len(a), 0), a), nil
	case "redand":
		a, err := un()
		if err != nil {
			return nil, err
		}
		out := aig.True
		for _, b := range a {
			out = m.N.And(out, b)
		}
		return bit(out), nil
	case "redor":
		a, err := un()
		if err != nil {
			return nil, err
		}
		return bit(m.NonZero(a)), nil
	case "redxor":
		a, err := un()
		if err != nil {
			return nil, err
		}
		out := aig.False
		for _, b := range a {
			out = m.N.Xor(out, b)
		}
		return bit(out), nil
	case "and", "or", "xor", "nand", "nor", "xnor":
		a, b, err := bin()
		if err != nil {
			return nil, err
		}
		var out rtl.Vec
		switch n.kind {
		case "and":
			out = m.AndV(a, b)
		case "or":
			out = m.OrV(a, b)
		case "xor":
			out = m.XorV(a, b)
		case "nand":
			out = m.NotV(m.AndV(a, b))
		case "nor":
			out = m.NotV(m.OrV(a, b))
		default:
			out = m.NotV(m.XorV(a, b))
		}
		return out, nil
	case "implies":
		a, b, err := bin()
		if err != nil {
			return nil, err
		}
		return bit(m.N.Implies(m.NonZero(a), m.NonZero(b))), nil
	case "iff":
		a, b, err := bin()
		if err != nil {
			return nil, err
		}
		return bit(m.N.Xnor(m.NonZero(a), m.NonZero(b))), nil
	case "add", "sub", "mul":
		a, b, err := bin()
		if err != nil {
			return nil, err
		}
		switch n.kind {
		case "add":
			return m.Add(a, b), nil
		case "sub":
			return m.Sub(a, b), nil
		default:
			return m.Mul(a, b), nil
		}
	case "eq", "neq", "ult", "ulte", "ugt", "ugte":
		a, b, err := bin()
		if err != nil {
			return nil, err
		}
		switch n.kind {
		case "eq":
			return bit(m.Eq(a, b)), nil
		case "neq":
			return bit(m.Ne(a, b)), nil
		case "ult":
			return bit(m.Ult(a, b)), nil
		case "ulte":
			return bit(m.Ule(a, b)), nil
		case "ugt":
			return bit(m.Ugt(a, b)), nil
		default:
			return bit(m.Uge(a, b)), nil
		}
	case "sll", "srl":
		a, b, err := bin()
		if err != nil {
			return nil, err
		}
		if n.kind == "sll" {
			return m.ShlV(a, b), nil
		}
		return m.ShrV(a, b), nil
	case "ite":
		if len(n.args) < 3 {
			return nil, fmt.Errorf("btor2 line %d: short ite", n.line)
		}
		c, err := p.value(n.args[0])
		if err != nil {
			return nil, err
		}
		a, err := p.value(n.args[1])
		if err != nil {
			return nil, err
		}
		b, err := p.value(n.args[2])
		if err != nil {
			return nil, err
		}
		ww := len(a)
		if len(b) > ww {
			ww = len(b)
		}
		return m.MuxV(m.NonZero(c), p.adapt(a, ww), p.adapt(b, ww)), nil
	case "slice":
		// slice <sort> <x> <upper> <lower>
		if len(n.args) < 3 {
			return nil, fmt.Errorf("btor2 line %d: short slice", n.line)
		}
		a, err := p.value(n.args[0])
		if err != nil {
			return nil, err
		}
		hi, lo := int(n.args[1]), int(n.args[2])
		if lo < 0 || hi >= len(a) || lo > hi {
			return nil, fmt.Errorf("btor2 line %d: slice [%d:%d] out of range", n.line, hi, lo)
		}
		return m.Slice(a, lo, hi+1), nil
	case "concat":
		// concat <sort> <hi-part> <lo-part>
		a, b, err := bin2(p, n)
		if err != nil {
			return nil, err
		}
		return m.Concat(b, a), nil
	case "uext":
		if len(n.args) < 2 {
			return nil, fmt.Errorf("btor2 line %d: short uext", n.line)
		}
		a, err := p.value(n.args[0])
		if err != nil {
			return nil, err
		}
		return m.ZeroExtend(a, len(a)+int(n.args[1])), nil
	case "read":
		// read <sort> <array> <addr>
		if len(n.args) < 2 {
			return nil, fmt.Errorf("btor2 line %d: short read", n.line)
		}
		as, ok := p.arrays[n.args[0]]
		if !ok {
			return nil, fmt.Errorf("btor2 line %d: read of non-array node %d", n.line, n.args[0])
		}
		addr, err := p.value(n.args[1])
		if err != nil {
			return nil, err
		}
		return as.mem.Read(p.adapt(addr, as.aw), aig.True), nil
	case "write":
		return nil, fmt.Errorf("btor2 line %d: write is only supported as an array next function", n.line)
	}
	return nil, fmt.Errorf("btor2 line %d: unsupported operation %q", n.line, n.kind)
}

// bin2 evaluates two operands without width harmonization (for concat).
func bin2(p *parser, n *node) (rtl.Vec, rtl.Vec, error) {
	if len(n.args) < 2 {
		return nil, nil, fmt.Errorf("btor2 line %d: short %s", n.line, n.kind)
	}
	a, err := p.value(n.args[0])
	if err != nil {
		return nil, nil, err
	}
	b, err := p.value(n.args[1])
	if err != nil {
		return nil, nil, err
	}
	return a, b, nil
}
