// Package par is the concurrency toolkit of the parallel verification
// layer: a bounded worker pool over an index space (property fleets,
// experiment rows) and a first-decisive-answer portfolio combinator (the
// depth-level forward/backward/counter-example race inside bmc.Check). All
// helpers are context-aware so that a decisive answer or an expired budget
// cancels outstanding work instead of letting it run to completion.
package par

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"emmver/internal/obs"
)

// Jobs normalizes a -jobs flag value: n <= 0 selects runtime.NumCPU().
func Jobs(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// ForEach invokes fn(ctx, worker, i) for every i in [0, n), running at most
// jobs invocations concurrently. Indices are handed out in order. The
// worker argument is stable per goroutine (in [0, jobs)), so callers can
// keep per-worker state — a solver, an unrolling — without locking. When
// ctx is cancelled, workers stop picking up new indices; in-flight calls
// run to completion and are expected to poll ctx themselves when
// long-running. ForEach returns ctx.Err().
//
// A panic in fn does not crash the process: the panicking worker's error
// (with the panic value and stack) is returned after the pool drains, the
// shared context is cancelled so the surviving workers wind down, and the
// remaining indices go undispatched. The first panic wins; ctx.Err() is
// only reported when no worker panicked.
func ForEach(ctx context.Context, jobs, n int, fn func(ctx context.Context, worker, i int)) error {
	jobs = Jobs(jobs)
	if jobs > n {
		jobs = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var next atomic.Int64
	var panicErr atomic.Pointer[error]
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				if !protect(ctx, worker, i, fn, &panicErr, cancel) {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if ep := panicErr.Load(); ep != nil {
		return *ep
	}
	return ctx.Err()
}

// protect runs one fn invocation, converting a panic into the pool's error
// and reporting whether the worker may continue.
func protect(ctx context.Context, worker, i int, fn func(context.Context, int, int), panicErr *atomic.Pointer[error], cancel context.CancelFunc) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			err := fmt.Errorf("par: worker %d panicked on index %d: %v\n%s", worker, i, r, debug.Stack())
			panicErr.CompareAndSwap(nil, &err)
			cancel()
			ok = false
		}
	}()
	fn(ctx, worker, i)
	return true
}

// ForEachObs is ForEach with span tracing: when o has a sink attached,
// every task runs inside a span named name carrying worker and index
// fields, so a trace journal attributes pool work to its worker goroutine.
// With tracing off it is exactly ForEach.
func ForEachObs(ctx context.Context, o *obs.Observer, name string, jobs, n int, fn func(ctx context.Context, worker, i int)) error {
	if !o.Enabled() {
		return ForEach(ctx, jobs, n, fn)
	}
	return ForEach(ctx, jobs, n, func(ctx context.Context, worker, i int) {
		// Derive per-task so worker and index ride on the end event (and
		// its duration) too, not just the start.
		sp := o.With(obs.F("worker", worker), obs.F("index", i)).Span(name)
		fn(ctx, worker, i)
		sp.End()
	})
}

// SyncWriter wraps w with a mutex so concurrent workers can share one log
// sink without interleaving partial lines. A nil w stays nil.
func SyncWriter(w io.Writer) io.Writer {
	if w == nil {
		return nil
	}
	return &syncWriter{w: w}
}

type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (sw *syncWriter) Write(p []byte) (int, error) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.w.Write(p)
}

// First runs every fn concurrently, cancelling the context shared by all of
// them as soon as any fn reports decisive=true, and then waits for every fn
// to return (so the caller may immediately reuse whatever state the fns
// were working on). It returns the index of the lowest-numbered decisive fn
// — ties between simultaneously decisive fns resolve in slice order, which
// callers use to encode a deterministic priority — or -1 when none was
// decisive, plus every fn's value.
func First[T any](ctx context.Context, fns ...func(ctx context.Context) (T, bool)) (int, []T) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	vals := make([]T, len(fns))
	decisive := make([]bool, len(fns))
	var wg sync.WaitGroup
	for i, fn := range fns {
		wg.Add(1)
		go func(i int, fn func(context.Context) (T, bool)) {
			defer wg.Done()
			v, ok := fn(ctx)
			vals[i] = v
			decisive[i] = ok
			if ok {
				cancel()
			}
		}(i, fn)
	}
	wg.Wait()
	for i, ok := range decisive {
		if ok {
			return i, vals
		}
	}
	return -1, vals
}
