package par

import (
	"context"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestJobs(t *testing.T) {
	if got := Jobs(0); got != runtime.NumCPU() {
		t.Fatalf("Jobs(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Jobs(-3); got != runtime.NumCPU() {
		t.Fatalf("Jobs(-3) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Jobs(7); got != 7 {
		t.Fatalf("Jobs(7) = %d", got)
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	const n = 1000
	hits := make([]atomic.Int32, n)
	err := ForEach(context.Background(), 8, n, func(_ context.Context, _, i int) {
		hits[i].Add(1)
	})
	if err != nil {
		t.Fatalf("ForEach: %v", err)
	}
	for i := range hits {
		if c := hits[i].Load(); c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestForEachBoundsConcurrencyAndWorkerIDs(t *testing.T) {
	const jobs, n = 4, 200
	var cur, peak atomic.Int32
	var mu sync.Mutex
	seen := map[int]bool{}
	ForEach(context.Background(), jobs, n, func(_ context.Context, w, i int) {
		if w < 0 || w >= jobs {
			t.Errorf("worker id %d out of range", w)
		}
		mu.Lock()
		seen[w] = true
		mu.Unlock()
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(100 * time.Microsecond)
		cur.Add(-1)
	})
	if p := peak.Load(); p > jobs {
		t.Fatalf("concurrency peak %d exceeds jobs %d", p, jobs)
	}
	if len(seen) == 0 || len(seen) > jobs {
		t.Fatalf("worker id set wrong: %v", seen)
	}
}

func TestForEachStopsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int32
	err := ForEach(ctx, 2, 10000, func(_ context.Context, _, i int) {
		if done.Add(1) == 10 {
			cancel()
		}
		time.Sleep(50 * time.Microsecond)
	})
	if err == nil {
		t.Fatalf("expected context error")
	}
	if d := done.Load(); d >= 10000 {
		t.Fatalf("cancellation did not stop the pool (ran %d)", d)
	}
}

func TestFirstReturnsDecisiveAndCancelsRest(t *testing.T) {
	slowCancelled := make(chan struct{})
	win, vals := First(context.Background(),
		func(ctx context.Context) (string, bool) {
			// Loses: blocks until cancelled by the decisive lane.
			<-ctx.Done()
			close(slowCancelled)
			return "slow", false
		},
		func(ctx context.Context) (string, bool) {
			return "fast", true
		},
	)
	if win != 1 || vals[1] != "fast" {
		t.Fatalf("got win=%d vals=%v", win, vals)
	}
	select {
	case <-slowCancelled:
	default:
		t.Fatalf("losing lane was not cancelled before First returned")
	}
}

func TestFirstNoDecisive(t *testing.T) {
	win, vals := First(context.Background(),
		func(context.Context) (int, bool) { return 1, false },
		func(context.Context) (int, bool) { return 2, false },
	)
	if win != -1 || vals[0] != 1 || vals[1] != 2 {
		t.Fatalf("got win=%d vals=%v", win, vals)
	}
}

func TestFirstPrefersLowestIndexOnTie(t *testing.T) {
	// Both lanes decisive with no blocking: the lowest index must win
	// regardless of which goroutine finishes first.
	for i := 0; i < 50; i++ {
		win, _ := First(context.Background(),
			func(context.Context) (int, bool) { return 0, true },
			func(context.Context) (int, bool) { return 1, true },
		)
		if win != 0 {
			t.Fatalf("tie broke to %d, want 0", win)
		}
	}
}

func TestForEachRecoversPanic(t *testing.T) {
	var ran atomic.Int64
	err := ForEach(context.Background(), 4, 100, func(ctx context.Context, w, i int) {
		if i == 7 {
			panic("worker exploded")
		}
		ran.Add(1)
	})
	if err == nil {
		t.Fatalf("panicking pool returned nil error")
	}
	if !strings.Contains(err.Error(), "worker exploded") || !strings.Contains(err.Error(), "index 7") {
		t.Fatalf("error lacks panic context: %v", err)
	}
	// The panic cancels the pool: not every index needs to run, but the
	// process must survive and the pool must have drained (we got here).
	if ran.Load() == 0 {
		t.Fatalf("no indices ran before the panic")
	}
}

func TestForEachPanicCancelsSurvivors(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	err := ForEach(context.Background(), 2, 4, func(ctx context.Context, w, i int) {
		switch i {
		case 0:
			<-started // wait until the sibling is in flight
			panic("boom")
		case 1:
			close(started)
			select {
			case <-ctx.Done(): // the sibling's panic must cancel us
			case <-release:
				t.Errorf("survivor was not cancelled after sibling panic")
			}
		}
	})
	close(release)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want the panic error", err)
	}
}

func TestForEachObsRecoversPanic(t *testing.T) {
	err := ForEachObs(context.Background(), nil, "pool", 2, 10, func(ctx context.Context, w, i int) {
		if i == 3 {
			panic("traced worker exploded")
		}
	})
	if err == nil || !strings.Contains(err.Error(), "traced worker exploded") {
		t.Fatalf("err = %v, want the panic error", err)
	}
}
