package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestJobs(t *testing.T) {
	if got := Jobs(0); got != runtime.NumCPU() {
		t.Fatalf("Jobs(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Jobs(-3); got != runtime.NumCPU() {
		t.Fatalf("Jobs(-3) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Jobs(7); got != 7 {
		t.Fatalf("Jobs(7) = %d", got)
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	const n = 1000
	hits := make([]atomic.Int32, n)
	err := ForEach(context.Background(), 8, n, func(_ context.Context, _, i int) {
		hits[i].Add(1)
	})
	if err != nil {
		t.Fatalf("ForEach: %v", err)
	}
	for i := range hits {
		if c := hits[i].Load(); c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestForEachBoundsConcurrencyAndWorkerIDs(t *testing.T) {
	const jobs, n = 4, 200
	var cur, peak atomic.Int32
	var mu sync.Mutex
	seen := map[int]bool{}
	ForEach(context.Background(), jobs, n, func(_ context.Context, w, i int) {
		if w < 0 || w >= jobs {
			t.Errorf("worker id %d out of range", w)
		}
		mu.Lock()
		seen[w] = true
		mu.Unlock()
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(100 * time.Microsecond)
		cur.Add(-1)
	})
	if p := peak.Load(); p > jobs {
		t.Fatalf("concurrency peak %d exceeds jobs %d", p, jobs)
	}
	if len(seen) == 0 || len(seen) > jobs {
		t.Fatalf("worker id set wrong: %v", seen)
	}
}

func TestForEachStopsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int32
	err := ForEach(ctx, 2, 10000, func(_ context.Context, _, i int) {
		if done.Add(1) == 10 {
			cancel()
		}
		time.Sleep(50 * time.Microsecond)
	})
	if err == nil {
		t.Fatalf("expected context error")
	}
	if d := done.Load(); d >= 10000 {
		t.Fatalf("cancellation did not stop the pool (ran %d)", d)
	}
}

func TestFirstReturnsDecisiveAndCancelsRest(t *testing.T) {
	slowCancelled := make(chan struct{})
	win, vals := First(context.Background(),
		func(ctx context.Context) (string, bool) {
			// Loses: blocks until cancelled by the decisive lane.
			<-ctx.Done()
			close(slowCancelled)
			return "slow", false
		},
		func(ctx context.Context) (string, bool) {
			return "fast", true
		},
	)
	if win != 1 || vals[1] != "fast" {
		t.Fatalf("got win=%d vals=%v", win, vals)
	}
	select {
	case <-slowCancelled:
	default:
		t.Fatalf("losing lane was not cancelled before First returned")
	}
}

func TestFirstNoDecisive(t *testing.T) {
	win, vals := First(context.Background(),
		func(context.Context) (int, bool) { return 1, false },
		func(context.Context) (int, bool) { return 2, false },
	)
	if win != -1 || vals[0] != 1 || vals[1] != 2 {
		t.Fatalf("got win=%d vals=%v", win, vals)
	}
}

func TestFirstPrefersLowestIndexOnTie(t *testing.T) {
	// Both lanes decisive with no blocking: the lowest index must win
	// regardless of which goroutine finishes first.
	for i := 0; i < 50; i++ {
		win, _ := First(context.Background(),
			func(context.Context) (int, bool) { return 0, true },
			func(context.Context) (int, bool) { return 1, true },
		)
		if win != 0 {
			t.Fatalf("tie broke to %d, want 0", win)
		}
	}
}
