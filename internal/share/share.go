// Package share is the learnt-clause sharing bus of the cooperative
// parallel solving layer. Each worker in a fleet owns a bounded broadcast
// ring it pushes exported lemmas into; every other worker drains the peers'
// rings at its own restart boundaries through a per-worker Inbox. Clauses
// travel in a solver-independent canonical literal coding (assigned by the
// BMC layer from time-frame/node coordinates), so a clause learnt in one
// worker's CNF numbering can be replayed into another's.
//
// The rings are lock-free and lossy by design: a slow consumer loses the
// oldest entries instead of stalling a producer, and a concurrently
// overwritten slot is simply skipped. Both are safe because shared clauses
// are sound lemmas — losing one costs only an opportunity, never
// correctness — and the sequence-stamped slots guarantee a clause is
// delivered to a given inbox at most once.
package share

import (
	"sync"
	"sync/atomic"
)

// Clause is one shared lemma. Lits holds canonical literal codes (opaque to
// this package; the BMC bridge assigns and resolves them), LBD the glue the
// exporting solver recorded. Clauses are immutable once published.
type Clause struct {
	Lits []uint64
	LBD  int
}

// entry is one ring slot: the clause plus the sequence number it was
// published under, so consumers can tell a fresh entry from a stale or
// overwritten one.
type entry struct {
	seq uint64
	c   *Clause
}

// Ring is a bounded, lossy, multi-producer multi-consumer broadcast ring.
// Push never blocks; when the ring wraps, the oldest entries are
// overwritten. Consumers keep their own cursors (see Inbox) and observe
// each published clause at most once.
type Ring struct {
	slots []atomic.Pointer[entry]
	head  atomic.Uint64 // next sequence number to publish
}

// NewRing creates a ring with the given capacity (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{slots: make([]atomic.Pointer[entry], capacity)}
}

// Push publishes c. The slot index is claimed with an atomic increment, so
// concurrent producers never publish under the same sequence number; a
// producer lapped between claiming and storing overwrites harmlessly (its
// entry, or the one it displaced, is dropped by the seq check on read).
func (r *Ring) Push(c *Clause) {
	i := r.head.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(&entry{seq: i, c: c})
}

// Drain invokes fn for every clause published since cursor that is still
// resident, and returns the new cursor. When the consumer has fallen more
// than a full ring behind, the lost prefix is skipped.
func (r *Ring) Drain(cursor uint64, fn func(*Clause)) uint64 {
	head := r.head.Load()
	n := uint64(len(r.slots))
	if head > cursor+n {
		cursor = head - n // overrun: the older entries are gone
	}
	for ; cursor < head; cursor++ {
		e := r.slots[cursor%n].Load()
		if e == nil || e.seq != cursor {
			continue // not yet stored, or already overwritten by a later lap
		}
		fn(e.c)
	}
	return cursor
}

// Bus wires a fleet of workers together: one ring per worker plus the
// fleet-wide sharing tallies and the comparator intern table the BMC layer
// uses to give EMM address comparators a cross-worker canonical identity.
type Bus struct {
	rings []*Ring

	exported atomic.Int64
	imported atomic.Int64
	filtered atomic.Int64

	mu     sync.Mutex
	intern map[string]uint64
}

// NewBus creates a bus for the given number of workers, each with a ring of
// the given capacity.
func NewBus(workers, capacity int) *Bus {
	b := &Bus{rings: make([]*Ring, workers), intern: make(map[string]uint64)}
	for i := range b.rings {
		b.rings[i] = NewRing(capacity)
	}
	return b
}

// Workers returns the fleet size the bus was created for.
func (b *Bus) Workers() int { return len(b.rings) }

// Publish pushes c onto worker w's ring and counts it as exported.
func (b *Bus) Publish(w int, c *Clause) {
	b.rings[w].Push(c)
	b.exported.Add(1)
}

// Intern assigns a stable fleet-wide id to key, returning the existing id
// when the key was seen before (by any worker). Ids start at 0 and are
// dense, so callers can offset them into their own code namespace.
func (b *Bus) Intern(key string) uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if id, ok := b.intern[key]; ok {
		return id
	}
	id := uint64(len(b.intern))
	b.intern[key] = id
	return id
}

// AddImported counts clauses successfully replayed into a solver.
func (b *Bus) AddImported(n int64) { b.imported.Add(n) }

// AddFiltered counts clauses dropped by the canonical-coding filter on
// either side (export-side unmappable variables, import-side codes the
// receiving worker has not built).
func (b *Bus) AddFiltered(n int64) { b.filtered.Add(n) }

// Exported returns the fleet-wide count of clauses published to the bus.
func (b *Bus) Exported() int64 { return b.exported.Load() }

// Imported returns the fleet-wide count of clauses replayed into solvers.
func (b *Bus) Imported() int64 { return b.imported.Load() }

// Filtered returns the fleet-wide count of clauses dropped by the filter.
func (b *Bus) Filtered() int64 { return b.filtered.Load() }

// Inbox is one worker's consuming endpoint: per-peer cursors over every
// other worker's ring. Not safe for concurrent use (each worker drains its
// own inbox from its own solver's import hook).
type Inbox struct {
	bus     *Bus
	self    int
	cursors []uint64
}

// Inbox creates the consuming endpoint for worker self.
func (b *Bus) Inbox(self int) *Inbox {
	return &Inbox{bus: b, self: self, cursors: make([]uint64, len(b.rings))}
}

// Drain invokes fn for every not-yet-seen clause on every peer's ring
// (skipping the worker's own).
func (in *Inbox) Drain(fn func(*Clause)) {
	for p, r := range in.bus.rings {
		if p == in.self {
			continue
		}
		in.cursors[p] = r.Drain(in.cursors[p], fn)
	}
}
