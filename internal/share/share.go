// Package share is the learnt-clause sharing bus of the cooperative
// parallel solving layer. Each worker in a fleet owns a bounded broadcast
// ring it pushes exported lemmas into; every other worker drains the peers'
// rings at its own restart boundaries through a per-worker Inbox. Clauses
// travel in a solver-independent canonical literal coding (assigned by the
// BMC layer from time-frame/node coordinates), so a clause learnt in one
// worker's CNF numbering can be replayed into another's.
//
// The rings are lock-free and lossy by design: a slow consumer loses the
// oldest entries instead of stalling a producer, and a concurrently
// overwritten slot is simply skipped. Both are safe because shared clauses
// are sound lemmas — losing one costs only an opportunity, never
// correctness — and the sequence-stamped slots guarantee a clause is
// delivered to a given inbox at most once.
package share

import (
	"sync"
	"sync/atomic"
)

// Clause is one shared lemma. Lits holds canonical literal codes (opaque to
// this package; the BMC bridge assigns and resolves them), LBD the glue the
// exporting solver recorded. Clauses are immutable once published.
type Clause struct {
	Lits []uint64
	LBD  int
}

// entry is one ring slot: the clause plus the sequence number it was
// published under, so consumers can tell a fresh entry from a stale or
// overwritten one.
type entry struct {
	seq uint64
	c   *Clause
}

// Ring is a bounded, lossy, multi-producer multi-consumer broadcast ring.
// Push never blocks; when the ring wraps, the oldest entries are
// overwritten. Consumers keep their own cursors (see Inbox) and observe
// each published clause at most once.
type Ring struct {
	slots []atomic.Pointer[entry]
	head  atomic.Uint64 // next sequence number to publish
	// dropped counts delivery misses: clauses a consumer's cursor skipped
	// because the ring wrapped past them (or a slot was overwritten between
	// the producer's claim and the consumer's read). A clause lost to two
	// consumers counts twice — the figure measures undelivered work, which
	// is what matters when tuning ring capacity against publish rate.
	dropped atomic.Int64
}

// NewRing creates a ring with the given capacity (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{slots: make([]atomic.Pointer[entry], capacity)}
}

// Push publishes c. The slot index is claimed with an atomic increment, so
// concurrent producers never publish under the same sequence number; a
// producer lapped between claiming and storing overwrites harmlessly (its
// entry, or the one it displaced, is dropped by the seq check on read).
func (r *Ring) Push(c *Clause) {
	i := r.head.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(&entry{seq: i, c: c})
}

// Drain invokes fn for every clause published since cursor that is still
// resident, and returns the new cursor. When the consumer has fallen more
// than a full ring behind, the lost prefix is skipped.
func (r *Ring) Drain(cursor uint64, fn func(*Clause)) uint64 {
	head := r.head.Load()
	n := uint64(len(r.slots))
	if head > cursor+n {
		lost := head - n - cursor
		cursor = head - n // overrun: the older entries are gone
		r.dropped.Add(int64(lost))
	}
	for ; cursor < head; cursor++ {
		e := r.slots[cursor%n].Load()
		if e == nil || e.seq != cursor {
			// Not yet stored, or already overwritten by a later lap. Either
			// way this consumer's cursor moves past it for good.
			r.dropped.Add(1)
			continue
		}
		fn(e.c)
	}
	return cursor
}

// Dropped returns the cumulative delivery misses on this ring.
func (r *Ring) Dropped() int64 { return r.dropped.Load() }

// Bus wires a fleet of workers together: one ring per worker plus the
// fleet-wide sharing tallies and the comparator intern table the BMC layer
// uses to give EMM address comparators a cross-worker canonical identity.
//
// A bus can additionally be uplinked to a cross-process transport
// (internal/sharenet): foreign clauses arriving over the wire enter through
// PushRemote onto a dedicated remote ring every local inbox drains, local
// publishes leave through an Outbox cursor, and SetInterner delegates the
// canonical-id authority to a fleet-wide broker. None of this changes the
// in-process API — the BMC bridge publishes, drains, and interns exactly as
// it would on a purely local bus.
type Bus struct {
	rings []*Ring
	// remote carries clauses received from other processes. Local inboxes
	// drain it like a peer's ring; the Outbox never does (a clause must not
	// be re-broadcast to the transport it arrived from).
	remote *Ring

	exported atomic.Int64
	imported atomic.Int64
	filtered atomic.Int64

	mu       sync.Mutex
	intern   map[string]uint64
	interner func(key string) (uint64, bool)
	// privateNext coins fallback ids when a remote interner fails (dead
	// transport); see Intern.
	privateNext uint64
}

// PrivateInternBase is the first id of the local-fallback intern namespace.
// Broker-assigned ids are dense from 0 and can never reach it, so a private
// id cannot collide with a fleet-wide one. Private ids must never cross a
// process boundary — two processes coining their n-th private id for
// different keys would alias, and an imported clause would decode to the
// wrong signal. Two mechanisms enforce that: the transport treats a failed
// intern round trip as link death (sharenet.Client stops flushing, so a
// worker holding private ids exports nothing), and the BMC bridge refuses
// to export or import comparator codes in the private range as a backstop.
const PrivateInternBase = uint64(1) << 40

// NewBus creates a bus for the given number of workers, each with a ring of
// the given capacity.
func NewBus(workers, capacity int) *Bus {
	b := &Bus{rings: make([]*Ring, workers), intern: make(map[string]uint64)}
	for i := range b.rings {
		b.rings[i] = NewRing(capacity)
	}
	b.remote = NewRing(capacity)
	return b
}

// Workers returns the fleet size the bus was created for.
func (b *Bus) Workers() int { return len(b.rings) }

// Publish pushes c onto worker w's ring and counts it as exported.
func (b *Bus) Publish(w int, c *Clause) {
	b.rings[w].Push(c)
	b.exported.Add(1)
}

// Intern assigns a stable fleet-wide id to key, returning the existing id
// when the key was seen before (by any worker). Ids start at 0 and are
// dense, so callers can offset them into their own code namespace.
//
// With a remote interner attached the authority is the fleet broker: the
// first sighting of a key pays one request/reply round trip, every later
// one hits the local cache. When the transport has died the key gets a
// private fallback id (>= PrivateInternBase) — locally consistent, unable
// to collide with any broker id, and never exported.
func (b *Bus) Intern(key string) uint64 {
	b.mu.Lock()
	if id, ok := b.intern[key]; ok {
		b.mu.Unlock()
		return id
	}
	if b.interner == nil {
		id := uint64(len(b.intern))
		b.intern[key] = id
		b.mu.Unlock()
		return id
	}
	remote := b.interner
	b.mu.Unlock() // the round trip must not serialize the whole bus
	id, ok := remote(key)
	b.mu.Lock()
	defer b.mu.Unlock()
	if cached, dup := b.intern[key]; dup {
		return cached // a racing worker interned it meanwhile
	}
	if !ok {
		id = PrivateInternBase + b.privateNext
		b.privateNext++
	}
	b.intern[key] = id
	return id
}

// SetInterner delegates fleet-wide id assignment to fn (the cross-process
// broker). Must be called before the first Intern.
func (b *Bus) SetInterner(fn func(key string) (uint64, bool)) {
	b.mu.Lock()
	b.interner = fn
	b.mu.Unlock()
}

// PushRemote delivers a clause received from another process to every local
// worker's inbox. It is not counted as exported — the exporting process
// already did — and never re-broadcast by the Outbox.
func (b *Bus) PushRemote(c *Clause) {
	b.remote.Push(c)
}

// AddImported counts clauses successfully replayed into a solver.
func (b *Bus) AddImported(n int64) { b.imported.Add(n) }

// AddFiltered counts clauses dropped by the canonical-coding filter on
// either side (export-side unmappable variables, import-side codes the
// receiving worker has not built).
func (b *Bus) AddFiltered(n int64) { b.filtered.Add(n) }

// Exported returns the fleet-wide count of clauses published to the bus.
func (b *Bus) Exported() int64 { return b.exported.Load() }

// Imported returns the fleet-wide count of clauses replayed into solvers.
func (b *Bus) Imported() int64 { return b.imported.Load() }

// Filtered returns the fleet-wide count of clauses dropped by the filter.
func (b *Bus) Filtered() int64 { return b.filtered.Load() }

// Dropped returns the fleet-wide count of clause deliveries lost to ring
// overrun (including the remote ring), the signal for tuning ring and
// socket capacities against publish rate.
func (b *Bus) Dropped() int64 {
	var n int64
	for _, r := range b.rings {
		n += r.Dropped()
	}
	return n + b.remote.Dropped()
}

// Inbox is one worker's consuming endpoint: per-peer cursors over every
// other worker's ring plus the remote ring. Not safe for concurrent use
// (each worker drains its own inbox from its own solver's import hook).
type Inbox struct {
	bus     *Bus
	self    int
	cursors []uint64 // one per local ring, then the remote ring last
}

// Inbox creates the consuming endpoint for worker self.
func (b *Bus) Inbox(self int) *Inbox {
	return &Inbox{bus: b, self: self, cursors: make([]uint64, len(b.rings)+1)}
}

// Drain invokes fn for every not-yet-seen clause on every peer's ring
// (skipping the worker's own) and on the remote ring.
func (in *Inbox) Drain(fn func(*Clause)) {
	for p, r := range in.bus.rings {
		if p == in.self {
			continue
		}
		in.cursors[p] = r.Drain(in.cursors[p], fn)
	}
	last := len(in.cursors) - 1
	in.cursors[last] = in.bus.remote.Drain(in.cursors[last], fn)
}

// Outbox is the transport's consuming endpoint: cursors over every local
// worker's ring (never the remote ring, which holds what the transport
// itself delivered). The cross-process uplink drains it periodically and
// forwards the clauses to the broker. Not safe for concurrent use.
type Outbox struct {
	bus     *Bus
	cursors []uint64
}

// Outbox creates the transport's consuming endpoint.
func (b *Bus) Outbox() *Outbox {
	return &Outbox{bus: b, cursors: make([]uint64, len(b.rings))}
}

// Drain invokes fn for every not-yet-forwarded locally published clause.
func (o *Outbox) Drain(fn func(*Clause)) {
	for p, r := range o.bus.rings {
		o.cursors[p] = r.Drain(o.cursors[p], fn)
	}
}
