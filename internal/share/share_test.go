package share

import (
	"sync"
	"testing"
)

func TestRingDeliversInOrder(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 5; i++ {
		r.Push(&Clause{Lits: []uint64{uint64(i)}})
	}
	var got []uint64
	cur := r.Drain(0, func(c *Clause) { got = append(got, c.Lits[0]) })
	if cur != 5 {
		t.Fatalf("cursor = %d, want 5", cur)
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("got[%d] = %d, want %d", i, v, i)
		}
	}
	// A second drain from the returned cursor sees nothing new.
	n := 0
	if cur = r.Drain(cur, func(*Clause) { n++ }); n != 0 || cur != 5 {
		t.Fatalf("re-drain delivered %d clauses, cursor %d", n, cur)
	}
}

func TestRingOverrunSkipsLostPrefix(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 11; i++ {
		r.Push(&Clause{Lits: []uint64{uint64(i)}})
	}
	var got []uint64
	r.Drain(0, func(c *Clause) { got = append(got, c.Lits[0]) })
	// Only the newest capacity-many survive, each delivered exactly once.
	if len(got) != 4 {
		t.Fatalf("delivered %d clauses, want 4", len(got))
	}
	for i, v := range got {
		if v != uint64(7+i) {
			t.Fatalf("got[%d] = %d, want %d", i, v, 7+i)
		}
	}
}

// TestRingAtMostOnceUnderRace hammers one ring from several producers and
// consumers; under -race this checks the atomics discipline, and the seq
// stamps must prevent any clause reaching one consumer twice.
func TestRingAtMostOnceUnderRace(t *testing.T) {
	r := NewRing(16)
	const producers, perProducer, consumers = 4, 500, 3
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				r.Push(&Clause{Lits: []uint64{uint64(p*perProducer + i)}})
			}
		}(p)
	}
	seen := make([]map[uint64]int, consumers)
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			seen[c] = map[uint64]int{}
			cur := uint64(0)
			for j := 0; j < 2000; j++ {
				cur = r.Drain(cur, func(cl *Clause) { seen[c][cl.Lits[0]]++ })
			}
		}(c)
	}
	wg.Wait()
	for c, m := range seen {
		for v, n := range m {
			if n > 1 {
				t.Fatalf("consumer %d saw clause %d %d times", c, v, n)
			}
		}
	}
}

func TestBusInboxSkipsSelf(t *testing.T) {
	b := NewBus(3, 8)
	b.Publish(0, &Clause{Lits: []uint64{100}})
	b.Publish(1, &Clause{Lits: []uint64{101}})
	b.Publish(2, &Clause{Lits: []uint64{102}})
	in := b.Inbox(1)
	var got []uint64
	in.Drain(func(c *Clause) { got = append(got, c.Lits[0]) })
	if len(got) != 2 {
		t.Fatalf("inbox drained %d clauses, want 2 (own ring skipped)", len(got))
	}
	for _, v := range got {
		if v == 101 {
			t.Fatalf("inbox 1 received its own clause")
		}
	}
	if b.Exported() != 3 {
		t.Fatalf("Exported = %d, want 3", b.Exported())
	}
}

func TestRingDroppedCountsOverrun(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 11; i++ {
		r.Push(&Clause{Lits: []uint64{uint64(i)}})
	}
	r.Drain(0, func(*Clause) {})
	// 11 published, 4 resident: 7 lost to this consumer.
	if got := r.Dropped(); got != 7 {
		t.Fatalf("Dropped = %d, want 7", got)
	}
	// A second, independent consumer loses the same prefix again.
	r.Drain(0, func(*Clause) {})
	if got := r.Dropped(); got != 14 {
		t.Fatalf("Dropped after second consumer = %d, want 14", got)
	}
}

func TestBusDroppedSumsRings(t *testing.T) {
	b := NewBus(2, 2)
	for i := 0; i < 6; i++ {
		b.Publish(0, &Clause{Lits: []uint64{uint64(i)}})
		b.PushRemote(&Clause{Lits: []uint64{uint64(100 + i)}})
	}
	in := b.Inbox(1)
	in.Drain(func(*Clause) {})
	// Ring capacity 2, 6 pushed on worker 0's ring and 6 on the remote ring:
	// 4 lost on each.
	if got := b.Dropped(); got != 8 {
		t.Fatalf("Bus.Dropped = %d, want 8", got)
	}
}

func TestInboxDrainsRemoteRing(t *testing.T) {
	b := NewBus(2, 8)
	b.Publish(0, &Clause{Lits: []uint64{1}})
	b.PushRemote(&Clause{Lits: []uint64{2}})
	for self := 0; self < 2; self++ {
		in := b.Inbox(self)
		var got []uint64
		in.Drain(func(c *Clause) { got = append(got, c.Lits[0]) })
		want := 2
		if self == 0 {
			want = 1 // own ring skipped, remote still delivered
		}
		if len(got) != want {
			t.Fatalf("inbox %d drained %d clauses, want %d", self, len(got), want)
		}
		seen := false
		for _, v := range got {
			if v == 2 {
				seen = true
			}
		}
		if !seen {
			t.Fatalf("inbox %d missed the remote clause", self)
		}
	}
}

func TestOutboxNeverEchoesRemote(t *testing.T) {
	b := NewBus(2, 8)
	b.Publish(0, &Clause{Lits: []uint64{10}})
	b.Publish(1, &Clause{Lits: []uint64{11}})
	b.PushRemote(&Clause{Lits: []uint64{99}})
	o := b.Outbox()
	var got []uint64
	o.Drain(func(c *Clause) { got = append(got, c.Lits[0]) })
	if len(got) != 2 {
		t.Fatalf("outbox drained %d clauses, want 2", len(got))
	}
	for _, v := range got {
		if v == 99 {
			t.Fatalf("outbox echoed a remote clause back to the transport")
		}
	}
	// Incremental: a later local publish is picked up, the old ones are not.
	b.Publish(0, &Clause{Lits: []uint64{12}})
	got = got[:0]
	o.Drain(func(c *Clause) { got = append(got, c.Lits[0]) })
	if len(got) != 1 || got[0] != 12 {
		t.Fatalf("second drain = %v, want [12]", got)
	}
}

func TestBusInternDelegatesToRemote(t *testing.T) {
	b := NewBus(1, 4)
	calls := 0
	b.SetInterner(func(key string) (uint64, bool) {
		calls++
		return 7000 + uint64(len(key)), true
	})
	a := b.Intern("abc")
	if a != 7003 {
		t.Fatalf("Intern = %d, want broker id 7003", a)
	}
	if got := b.Intern("abc"); got != a {
		t.Fatalf("re-intern = %d, want cached %d", got, a)
	}
	if calls != 1 {
		t.Fatalf("remote interner called %d times, want 1 (cache hit after)", calls)
	}
}

func TestBusInternPrivateFallback(t *testing.T) {
	b := NewBus(1, 4)
	b.SetInterner(func(string) (uint64, bool) { return 0, false })
	a := b.Intern("x")
	c := b.Intern("y")
	if a < PrivateInternBase || c < PrivateInternBase {
		t.Fatalf("fallback ids %d, %d below private base", a, c)
	}
	if a == c {
		t.Fatalf("distinct keys got same private id")
	}
	if got := b.Intern("x"); got != a {
		t.Fatalf("private id not cached: %d vs %d", got, a)
	}
}

func TestBusInternIsStable(t *testing.T) {
	b := NewBus(2, 4)
	a := b.Intern("cmp:a=b")
	c := b.Intern("cmp:c=d")
	if a == c {
		t.Fatalf("distinct keys interned to same id")
	}
	if got := b.Intern("cmp:a=b"); got != a {
		t.Fatalf("re-intern = %d, want %d", got, a)
	}
	// Dense from zero, so callers can offset into their own namespace.
	if a != 0 || c != 1 {
		t.Fatalf("ids not dense from 0: %d, %d", a, c)
	}
}
