package share

import (
	"sync"
	"testing"
)

func TestRingDeliversInOrder(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 5; i++ {
		r.Push(&Clause{Lits: []uint64{uint64(i)}})
	}
	var got []uint64
	cur := r.Drain(0, func(c *Clause) { got = append(got, c.Lits[0]) })
	if cur != 5 {
		t.Fatalf("cursor = %d, want 5", cur)
	}
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("got[%d] = %d, want %d", i, v, i)
		}
	}
	// A second drain from the returned cursor sees nothing new.
	n := 0
	if cur = r.Drain(cur, func(*Clause) { n++ }); n != 0 || cur != 5 {
		t.Fatalf("re-drain delivered %d clauses, cursor %d", n, cur)
	}
}

func TestRingOverrunSkipsLostPrefix(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 11; i++ {
		r.Push(&Clause{Lits: []uint64{uint64(i)}})
	}
	var got []uint64
	r.Drain(0, func(c *Clause) { got = append(got, c.Lits[0]) })
	// Only the newest capacity-many survive, each delivered exactly once.
	if len(got) != 4 {
		t.Fatalf("delivered %d clauses, want 4", len(got))
	}
	for i, v := range got {
		if v != uint64(7+i) {
			t.Fatalf("got[%d] = %d, want %d", i, v, 7+i)
		}
	}
}

// TestRingAtMostOnceUnderRace hammers one ring from several producers and
// consumers; under -race this checks the atomics discipline, and the seq
// stamps must prevent any clause reaching one consumer twice.
func TestRingAtMostOnceUnderRace(t *testing.T) {
	r := NewRing(16)
	const producers, perProducer, consumers = 4, 500, 3
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				r.Push(&Clause{Lits: []uint64{uint64(p*perProducer + i)}})
			}
		}(p)
	}
	seen := make([]map[uint64]int, consumers)
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			seen[c] = map[uint64]int{}
			cur := uint64(0)
			for j := 0; j < 2000; j++ {
				cur = r.Drain(cur, func(cl *Clause) { seen[c][cl.Lits[0]]++ })
			}
		}(c)
	}
	wg.Wait()
	for c, m := range seen {
		for v, n := range m {
			if n > 1 {
				t.Fatalf("consumer %d saw clause %d %d times", c, v, n)
			}
		}
	}
}

func TestBusInboxSkipsSelf(t *testing.T) {
	b := NewBus(3, 8)
	b.Publish(0, &Clause{Lits: []uint64{100}})
	b.Publish(1, &Clause{Lits: []uint64{101}})
	b.Publish(2, &Clause{Lits: []uint64{102}})
	in := b.Inbox(1)
	var got []uint64
	in.Drain(func(c *Clause) { got = append(got, c.Lits[0]) })
	if len(got) != 2 {
		t.Fatalf("inbox drained %d clauses, want 2 (own ring skipped)", len(got))
	}
	for _, v := range got {
		if v == 101 {
			t.Fatalf("inbox 1 received its own clause")
		}
	}
	if b.Exported() != 3 {
		t.Fatalf("Exported = %d, want 3", b.Exported())
	}
}

func TestBusInternIsStable(t *testing.T) {
	b := NewBus(2, 4)
	a := b.Intern("cmp:a=b")
	c := b.Intern("cmp:c=d")
	if a == c {
		t.Fatalf("distinct keys interned to same id")
	}
	if got := b.Intern("cmp:a=b"); got != a {
		t.Fatalf("re-intern = %d, want %d", got, a)
	}
	// Dense from zero, so callers can offset into their own namespace.
	if a != 0 || c != 1 {
		t.Fatalf("ids not dense from 0: %d, %d", a, c)
	}
}
