package sat

import "testing"

// mkLearnt allocates a learnt clause with a given activity and attaches it,
// mirroring what recordLearnt does after conflict analysis.
func mkLearnt(s *Solver, act float32, lits ...Lit) cref {
	c := s.db.alloc(lits, true, -1)
	s.db.hdr[c].act = act
	s.learnts = append(s.learnts, c)
	s.attach(c)
	return c
}

// TestReduceDBKeepsBinaryAndLockedLearnts is the regression test for the
// activity-sorted reduceDB: clauses of size two and clauses that are the
// reason of a standing assignment must survive reduction no matter how low
// their activity is, while low-activity long unlocked clauses are dropped.
func TestReduceDBKeepsBinaryAndLockedLearnts(t *testing.T) {
	s := New()
	vars := make([]Var, 40)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	pos := func(i int) Lit { return PosLit(vars[i]) }

	// A binary learnt with the lowest activity of all.
	bin := mkLearnt(s, 0, pos(0), pos(1))

	// A long learnt that is the reason of a standing assignment: lits[0]
	// is implied true by it. Give it rock-bottom activity too.
	locked := mkLearnt(s, 0, pos(2), pos(3), pos(4))
	s.trailLim = append(s.trailLim, len(s.trail)) // a decision level to live on
	s.uncheckedEnqueue(pos(2), locked)
	if !s.locked(locked) {
		t.Fatalf("setup: clause %d should be locked", locked)
	}

	// Filler: long, unlocked, with activities 1..20 so the low half is
	// unambiguous.
	var filler []cref
	for i := 0; i < 20; i++ {
		c := mkLearnt(s, float32(i+1), pos(5+i), pos(6+i), pos(7+i))
		filler = append(filler, c)
	}

	s.reduceDB()

	if s.db.isDeleted(bin) {
		t.Errorf("binary learnt was deleted by reduceDB")
	}
	if s.db.isDeleted(locked) {
		t.Errorf("reason-locked learnt was deleted by reduceDB")
	}
	deleted := 0
	for _, c := range filler {
		if s.db.isDeleted(c) {
			deleted++
		}
	}
	if deleted == 0 {
		t.Errorf("reduceDB deleted no unlocked long learnts")
	}
	// Survivors must all still be attached (present in s.learnts) and the
	// deleted ones gone from it.
	for _, c := range s.learnts {
		if s.db.isDeleted(c) {
			t.Errorf("deleted clause %d still listed in learnts", c)
		}
	}
	// The activity order must have been respected: every surviving filler
	// clause has activity >= every deleted one.
	minKept := float32(1e30)
	maxDel := float32(-1)
	for _, c := range filler {
		a := s.db.hdr[c].act
		if s.db.isDeleted(c) {
			if a > maxDel {
				maxDel = a
			}
		} else if a < minKept {
			minKept = a
		}
	}
	if maxDel > minKept {
		t.Errorf("activity sort violated: deleted act %v > kept act %v", maxDel, minKept)
	}
}

// TestArenaCompaction checks that compaction preserves every live clause's
// literals and that crefs stay valid across it.
func TestArenaCompaction(t *testing.T) {
	var db clauseDB
	var live []cref
	var want [][]Lit
	for i := 0; i < 50; i++ {
		lits := []Lit{PosLit(Var(i)), NegLit(Var(i + 1)), PosLit(Var(i + 2))}
		c := db.alloc(lits, i%2 == 0, int32(i))
		if i%3 == 0 {
			db.markDeleted(c)
		} else {
			live = append(live, c)
			want = append(want, append([]Lit(nil), lits...))
		}
	}
	if !db.shouldCompact() {
		t.Fatalf("expected compaction to be due (wasted=%d, arena=%d)", db.wasted, len(db.arena))
	}
	db.compact()
	if db.wasted != 0 {
		t.Fatalf("wasted not reset after compact: %d", db.wasted)
	}
	for i, c := range live {
		got := db.lits(c)
		if len(got) != len(want[i]) {
			t.Fatalf("clause %d: %d lits after compact, want %d", c, len(got), len(want[i]))
		}
		for j := range got {
			if got[j] != want[i][j] {
				t.Fatalf("clause %d lit %d: got %v want %v", c, j, got[j], want[i][j])
			}
		}
		if db.id(c) != int32(c) {
			t.Fatalf("clause %d lost its id: %d", c, db.id(c))
		}
	}
}

// TestSolveAfterReduceAndCompact drives a real search through enough
// conflicts that reduceDB (and possibly compaction) fire, then checks the
// solver still answers correctly on both branches.
func TestSolveAfterReduceAndCompact(t *testing.T) {
	// Pigeonhole 6/5 is UNSAT and conflict-heavy.
	s := New()
	holes, pigeons := 5, 6
	lit := func(p, h int) Lit { return PosLit(Var(p*holes + h)) }
	for i := 0; i < pigeons*holes; i++ {
		s.NewVar()
	}
	for p := 0; p < pigeons; p++ {
		row := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			row[h] = lit(p, h)
		}
		s.AddClause(row...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(lit(p1, h).Not(), lit(p2, h).Not())
			}
		}
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("PHP(6,5) = %v, want Unsat", got)
	}
	if s.Stats().Conflicts == 0 {
		t.Fatalf("expected conflicts during PHP search")
	}
}
