// Package sat implements a CDCL (conflict-driven clause learning) SAT solver
// with watched-literal propagation, VSIDS decision heuristics, phase saving,
// Luby restarts, incremental solving under assumptions, and resolution proof
// tracing for UNSAT-core extraction.
//
// The proof-tracing facility is what makes this solver suitable as the back
// end of proof-based abstraction (PBA): every original clause carries a
// caller-supplied provenance tag, and after an UNSAT answer Core reports the
// tags of a subset of original clauses sufficient for unsatisfiability.
package sat

import "fmt"

// Var is a propositional variable. Variables are allocated densely starting
// at 0 via Solver.NewVar.
type Var int32

// Lit is a literal: a variable together with a sign. The encoding is
// lit = 2*var + sign, with sign 1 meaning negated. This matches the
// MiniSat convention and makes Lit usable directly as a slice index.
type Lit int32

// LitUndef is the sentinel "no literal" value.
const LitUndef Lit = -1

// VarUndef is the sentinel "no variable" value.
const VarUndef Var = -1

// MkLit builds a literal from a variable and a sign (neg=true for ¬v).
func MkLit(v Var, neg bool) Lit {
	l := Lit(v) << 1
	if neg {
		l |= 1
	}
	return l
}

// PosLit returns the positive literal of v.
func PosLit(v Var) Lit { return Lit(v) << 1 }

// NegLit returns the negative literal of v.
func NegLit(v Var) Lit { return Lit(v)<<1 | 1 }

// Var returns the variable underlying l.
func (l Lit) Var() Var { return Var(l >> 1) }

// Sign reports whether l is negated.
func (l Lit) Sign() bool { return l&1 != 0 }

// Not returns the complement of l.
func (l Lit) Not() Lit { return l ^ 1 }

// XorSign flips the sign of l when neg is true.
func (l Lit) XorSign(neg bool) Lit {
	if neg {
		return l ^ 1
	}
	return l
}

// String renders the literal in DIMACS-like form ("3", "-3").
func (l Lit) String() string {
	if l == LitUndef {
		return "undef"
	}
	if l.Sign() {
		return fmt.Sprintf("-%d", l.Var()+1)
	}
	return fmt.Sprintf("%d", l.Var()+1)
}

// LBool is a lifted boolean: True, False or Undef.
type LBool int8

// Lifted boolean constants.
const (
	Undef LBool = iota
	True
	False
)

// Not negates a lifted boolean (Undef stays Undef).
func (b LBool) Not() LBool {
	switch b {
	case True:
		return False
	case False:
		return True
	}
	return Undef
}

// XorSign flips b when neg is true.
func (b LBool) XorSign(neg bool) LBool {
	if neg {
		return b.Not()
	}
	return b
}

// String renders the lifted boolean.
func (b LBool) String() string {
	switch b {
	case True:
		return "true"
	case False:
		return "false"
	}
	return "undef"
}

// Status is the result of a Solve call.
type Status int

// Solve outcomes.
const (
	// Unknown means the solver was interrupted (budget or cancellation).
	Unknown Status = iota
	// Sat means a satisfying assignment was found.
	Sat
	// Unsat means the formula (under the given assumptions) is unsatisfiable.
	Unsat
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	}
	return "UNKNOWN"
}
