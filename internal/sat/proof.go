package sat

// Proof tracing internals.
//
// Every attached clause gets a dense id. For learnt clauses the solver
// records a resolution chain: the ids of the clauses resolved together
// during conflict analysis. Literals assigned at decision level 0 are
// dropped from resolvents without resolving them out explicitly; instead
// of expanding their (possibly huge, shared) level-0 derivations into every
// chain, the chain stores a compact marker for the variable and the
// derivation is expanded once — memoized across the whole walk — when Core
// is called. Level-0 assignments and their reason clauses are never undone
// or deleted (reasons are locked), so deferred expansion is sound.
//
// Chains live in a flat arena indexed by clause id, keeping the per-learnt
// overhead to the antecedent count times 4 bytes.

// chainEntry encoding: values ≥ 0 are clause ids; value -(v+1) marks "the
// level-0 derivation of variable v".
func markLevelZero(v Var) int32 { return -int32(v) - 1 }

func isLevelZeroMark(e int32) bool { return e < 0 }

func markedVar(e int32) Var { return Var(-e - 1) }

// proofStore holds chains and tags for all attached clauses.
type proofStore struct {
	arena []int32 // concatenated chains
	off   []int32 // id -> start offset in arena (len id+1 entries when built)
	tags  []int64 // id -> caller tag (originals), -1 for learnt clauses
}

// addOriginal registers an original clause and returns its id.
func (p *proofStore) addOriginal(tag int64) int32 {
	id := int32(len(p.off))
	p.off = append(p.off, int32(len(p.arena)))
	p.tags = append(p.tags, tag)
	return id
}

// addLearnt registers a learnt clause with its resolution chain.
func (p *proofStore) addLearnt(chain []int32) int32 {
	id := int32(len(p.off))
	p.off = append(p.off, int32(len(p.arena)))
	p.tags = append(p.tags, -1)
	p.arena = append(p.arena, chain...)
	return id
}

// chain returns the stored chain of a clause id.
func (p *proofStore) chain(id int32) []int32 {
	start := p.off[id]
	end := int32(len(p.arena))
	if int(id+1) < len(p.off) {
		end = p.off[id+1]
	}
	return p.arena[start:end]
}

func (p *proofStore) isLearnt(id int32) bool { return p.tags[id] == -1 }

// Core returns the provenance tags of a subset of original clauses that,
// together with the failed assumptions of the last Solve, is
// unsatisfiable. It must be called after an Unsat answer with proof
// tracing enabled. Tags equal to -1 (untagged clauses) are omitted;
// duplicate tags are reported once.
func (s *Solver) Core() []int64 {
	if !s.trace {
		panic("sat: Core requires proof tracing")
	}
	chain := s.finalChain
	if chain == nil && !s.ok {
		chain = s.rootCause
	}
	seenID := make(map[int32]bool)
	seenVar := make(map[Var]bool)
	seenTag := make(map[int64]bool)
	var tags []int64

	var stack []int32
	push := func(entries []int32) {
		stack = append(stack, entries...)
	}
	push(chain)
	for len(stack) > 0 {
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if isLevelZeroMark(e) {
			v := markedVar(e)
			if seenVar[v] {
				continue
			}
			seenVar[v] = true
			r := s.reasons[v]
			if r == crefUndef {
				continue // defensive: level-0 decision cannot happen
			}
			stack = append(stack, s.db.id(r))
			for _, q := range s.db.lits(r) {
				if q.Var() != v && s.levels[q.Var()] == 0 {
					stack = append(stack, markLevelZero(q.Var()))
				}
			}
			continue
		}
		if seenID[e] {
			continue
		}
		seenID[e] = true
		if s.proof.isLearnt(e) {
			push(s.proof.chain(e))
			continue
		}
		tag := s.proof.tags[e]
		if tag >= 0 && !seenTag[tag] {
			seenTag[tag] = true
			tags = append(tags, tag)
		}
	}
	return tags
}
