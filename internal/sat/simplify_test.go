package sat

import (
	"errors"
	"math/rand"
	"testing"
)

func TestSimplifyTracingGuard(t *testing.T) {
	s := New()
	s.EnableProofTracing()
	addVars(s, 3)
	s.AddClauseTagged(0, lits(1, 2))
	s.AddClauseTagged(1, lits(1, 2, 3)) // subsumed, but must survive under tracing
	nc := s.NumClauses()
	if err := s.Simplify(); !errors.Is(err, ErrTracingActive) {
		t.Fatalf("Simplify under tracing: err=%v, want ErrTracingActive", err)
	}
	if s.NumClauses() != nc {
		t.Fatalf("Simplify under tracing changed the database: %d -> %d clauses", nc, s.NumClauses())
	}
	if st := s.Stats(); st.Simplifies != 0 || st.SubsumedClauses != 0 || st.EliminatedVars != 0 {
		t.Fatalf("Simplify under tracing touched stats: %+v", st)
	}
	// The solver must remain fully functional, proof machinery included.
	s.AddClauseTagged(2, lits(-1))
	s.AddClauseTagged(3, lits(-2))
	if s.Solve() != Unsat {
		t.Fatalf("expected UNSAT")
	}
	if len(s.Core()) == 0 {
		t.Fatalf("expected a non-empty core")
	}
}

func TestSimplifySubsumption(t *testing.T) {
	s := New()
	addVars(s, 3)
	s.AddClause(lits(1, 2)...)
	s.AddClause(lits(1, 2, 3)...)
	for v := Var(0); v < 3; v++ {
		s.Freeze(v) // isolate subsumption from variable elimination
	}
	if err := s.Simplify(); err != nil {
		t.Fatalf("Simplify: %v", err)
	}
	if st := s.Stats(); st.SubsumedClauses != 1 {
		t.Fatalf("SubsumedClauses=%d, want 1", st.SubsumedClauses)
	}
	if s.NumClauses() != 1 {
		t.Fatalf("NumClauses=%d, want 1 after subsumption", s.NumClauses())
	}
	if cl := s.ClauseAt(0); len(cl) != 2 {
		t.Fatalf("surviving clause %v, want the binary", cl)
	}
	if s.Solve() != Sat {
		t.Fatalf("expected SAT")
	}
}

func TestSimplifySelfSubsumingStrengthen(t *testing.T) {
	s := New()
	addVars(s, 5)
	// C = (a ∨ b) strengthens D = (¬a ∨ b ∨ c) to (b ∨ c). The extra a-clauses
	// make b the least-occurring literal of C, so D is found through occ[b].
	s.AddClause(lits(1, 2)...)
	s.AddClause(lits(-1, 2, 3)...)
	s.AddClause(lits(1, 4)...)
	s.AddClause(lits(1, 5)...)
	for v := Var(0); v < 5; v++ {
		s.Freeze(v)
	}
	if err := s.Simplify(); err != nil {
		t.Fatalf("Simplify: %v", err)
	}
	if st := s.Stats(); st.StrengthenedClauses != 1 {
		t.Fatalf("StrengthenedClauses=%d, want 1", st.StrengthenedClauses)
	}
	found := false
	for i := 0; i < s.NumClauses(); i++ {
		cl := s.ClauseAt(i)
		if len(cl) != 2 {
			continue
		}
		has := map[Lit]bool{cl[0]: true, cl[1]: true}
		if has[PosLit(1)] && has[PosLit(2)] {
			found = true
		}
	}
	if !found {
		t.Fatalf("strengthened clause (b ∨ c) not found")
	}
	// Strengthening must preserve equivalence: ¬b forces a (via C) — and with
	// the strengthened clause, also c.
	if s.Solve(lits(-2)[0]) != Sat {
		t.Fatalf("expected SAT under ¬b")
	}
	if s.Value(0) != True || s.Value(2) != True {
		t.Fatalf("under ¬b want a=true c=true, got a=%v c=%v", s.Value(0), s.Value(2))
	}
}

func TestSimplifyEliminationChain(t *testing.T) {
	const n = 20
	s := New()
	addVars(s, n)
	var orig [][]Lit
	for i := 0; i < n-1; i++ {
		cl := []Lit{NegLit(Var(i)), PosLit(Var(i + 1))}
		orig = append(orig, cl)
		s.AddClause(cl...)
	}
	s.Freeze(0)
	s.Freeze(n - 1)
	if err := s.Simplify(); err != nil {
		t.Fatalf("Simplify: %v", err)
	}
	st := s.Stats()
	if st.EliminatedVars != n-2 {
		t.Fatalf("EliminatedVars=%d, want %d", st.EliminatedVars, n-2)
	}
	if s.NumClauses() != 1 {
		t.Fatalf("NumClauses=%d, want 1 (the collapsed implication)", s.NumClauses())
	}
	for v := Var(1); v < n-1; v++ {
		if !s.Eliminated(v) {
			t.Fatalf("var %d should be eliminated", v)
		}
	}
	// Frozen endpoints still work, and the model must extend over the
	// eliminated middle so every original clause reads as satisfied.
	if s.Solve(lits(1)[0]) != Sat {
		t.Fatalf("expected SAT under x0")
	}
	if s.Value(n-1) != True {
		t.Fatalf("x%d must be implied true", n-1)
	}
	for _, cl := range orig {
		if s.LitValue(cl[0]) != True && s.LitValue(cl[1]) != True {
			t.Fatalf("extended model violates original clause %v", cl)
		}
	}
}

func TestSimplifyDerivesUnsat(t *testing.T) {
	s := New()
	addVars(s, 3)
	s.AddClause(lits(1, 2)...)
	s.AddClause(lits(-1, 2)...)
	s.AddClause(lits(-2, 3)...)
	s.AddClause(lits(-2, -3)...)
	if !s.Okay() {
		t.Fatalf("clause addition alone should not detect UNSAT here")
	}
	if err := s.Simplify(); err != nil {
		t.Fatalf("Simplify: %v", err)
	}
	if s.Okay() {
		t.Fatalf("Simplify should have derived UNSAT")
	}
	if s.Solve() != Unsat {
		t.Fatalf("expected UNSAT")
	}
}

func TestFreezeProtocol(t *testing.T) {
	s := New()
	addVars(s, 3)
	s.AddClause(lits(1, 2)...)
	s.AddClause(lits(-2, 3)...)
	for v := Var(0); v < 3; v++ {
		s.Freeze(v)
	}
	if err := s.Simplify(); err != nil {
		t.Fatalf("Simplify: %v", err)
	}
	if st := s.Stats(); st.EliminatedVars != 0 {
		t.Fatalf("frozen vars eliminated: %+v", st)
	}
	if !s.Frozen(1) {
		t.Fatalf("Frozen(1) should be true")
	}
	s.Thaw(1)
	if s.Frozen(1) {
		t.Fatalf("Frozen(1) should be false after Thaw")
	}
	if err := s.Simplify(); err != nil {
		t.Fatalf("Simplify: %v", err)
	}
	if !s.Eliminated(1) {
		t.Fatalf("thawed var should now be eliminable")
	}
	if s.Solve() != Sat {
		t.Fatalf("expected SAT")
	}
}

func TestEliminatedVarPanics(t *testing.T) {
	mk := func() *Solver {
		s := New()
		addVars(s, 3)
		s.AddClause(lits(1, 2)...)
		s.AddClause(lits(-2, 3)...)
		s.Freeze(0)
		s.Freeze(2)
		if err := s.Simplify(); err != nil {
			t.Fatalf("Simplify: %v", err)
		}
		if !s.Eliminated(1) {
			t.Fatalf("setup: var 1 should be eliminated")
		}
		return s
	}
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	expectPanic("AddClause", func() { mk().AddClause(lits(2)...) })
	expectPanic("assumption", func() { mk().Solve(lits(2)...) })
	expectPanic("Freeze", func() { mk().Freeze(1) })
	expectPanic("Thaw unbalanced", func() {
		s := New()
		addVars(s, 1)
		s.Thaw(0)
	})
}

func TestRestartModes(t *testing.T) {
	for _, mode := range []RestartMode{RestartEMA, RestartLuby} {
		s := New()
		s.Restart = mode
		pigeonhole(s, 8, 7)
		if got := s.Solve(); got != Unsat {
			t.Fatalf("%v: PHP(8,7) expected UNSAT, got %v", mode, got)
		}
		st := s.Stats()
		if st.Restarts != st.RestartsLuby+st.RestartsEMA {
			t.Fatalf("%v: restart split %d+%d != total %d", mode, st.RestartsLuby, st.RestartsEMA, st.Restarts)
		}
		switch mode {
		case RestartLuby:
			if st.RestartsEMA != 0 || st.RestartsLuby == 0 {
				t.Fatalf("luby: bad split %+v", st)
			}
			if st.RestartsBlocked != 0 {
				t.Fatalf("luby: blocking should be off, got %d", st.RestartsBlocked)
			}
		case RestartEMA:
			if st.RestartsLuby != 0 {
				t.Fatalf("ema: luby restarts counted: %+v", st)
			}
		}
		s2 := New()
		s2.Restart = mode
		pigeonhole(s2, 7, 7)
		if got := s2.Solve(); got != Sat {
			t.Fatalf("%v: PHP(7,7) expected SAT, got %v", mode, got)
		}
	}
}

func TestParseRestartMode(t *testing.T) {
	if m, err := ParseRestartMode("luby"); err != nil || m != RestartLuby {
		t.Fatalf("luby: %v %v", m, err)
	}
	if m, err := ParseRestartMode("ema"); err != nil || m != RestartEMA {
		t.Fatalf("ema: %v %v", m, err)
	}
	if _, err := ParseRestartMode("geometric"); err == nil {
		t.Fatalf("expected error on unknown mode")
	}
	if RestartEMA.String() != "ema" || RestartLuby.String() != "luby" {
		t.Fatalf("String() wrong")
	}
}

// TestSimplifyAgainstBruteForce is the strongest elimination exercise: whole
// random formulas with nothing frozen, simplified, solved, and the verdict
// and extended model checked against exhaustive enumeration.
func TestSimplifyAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for iter := 0; iter < 400; iter++ {
		nVars := 3 + rng.Intn(9)
		nClauses := 1 + rng.Intn(34)
		cnf := randomCNF(rng, nVars, nClauses, 4)
		want := bruteForce(nVars, cnf)
		s := New()
		addVars(s, nVars)
		dbOK := true
		for _, cl := range cnf {
			if !s.AddClause(cl...) {
				dbOK = false
				break
			}
		}
		if dbOK {
			if err := s.Simplify(); err != nil {
				t.Fatalf("iter %d: Simplify: %v", iter, err)
			}
		}
		got := dbOK && s.Solve() == Sat
		if got != want {
			t.Fatalf("iter %d: solver=%v brute=%v cnf=%v", iter, got, want, cnf)
		}
		if !got {
			continue
		}
		for _, cl := range cnf {
			sat := false
			for _, l := range cl {
				if s.LitValue(l) == True {
					sat = true
					break
				}
			}
			if !sat {
				t.Fatalf("iter %d: extended model violates clause %v", iter, cl)
			}
		}
	}
}

// TestSimplifyIncrementalEquivalence models the BMC usage pattern: add a
// batch, freeze the literals future batches and assumptions will mention,
// simplify, add the next batch, and solve under assumptions — comparing
// verdicts with a plain solver that never simplifies.
func TestSimplifyIncrementalEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(90210))
	for iter := 0; iter < 300; iter++ {
		nVars := 6 + rng.Intn(10)
		batch1 := randomCNF(rng, nVars, 5+rng.Intn(25), 4)
		batch2 := randomCNF(rng, nVars, 3+rng.Intn(15), 4)
		var assumps []Lit
		for i := rng.Intn(3); i > 0; i-- {
			assumps = append(assumps, MkLit(Var(rng.Intn(nVars)), rng.Intn(2) == 1))
		}

		ref := New()
		ref.Restart = RestartLuby
		addVars(ref, nVars)
		refOK := true
		for _, cl := range batch1 {
			if !ref.AddClause(cl...) {
				refOK = false
			}
		}
		for _, cl := range batch2 {
			if refOK && !ref.AddClause(cl...) {
				refOK = false
			}
		}
		want := Unsat
		if refOK {
			want = ref.Solve(assumps...)
		}

		s := New()
		addVars(s, nVars)
		sOK := true
		for _, cl := range batch1 {
			if !s.AddClause(cl...) {
				sOK = false
			}
		}
		frozen := make(map[Var]bool)
		freeze := func(v Var) {
			if !frozen[v] {
				frozen[v] = true
				s.Freeze(v)
			}
		}
		for _, cl := range batch2 {
			for _, l := range cl {
				freeze(l.Var())
			}
		}
		for _, a := range assumps {
			freeze(a.Var())
		}
		if err := s.Simplify(); err != nil {
			t.Fatalf("iter %d: Simplify: %v", iter, err)
		}
		for _, cl := range batch2 {
			if sOK && !s.AddClause(cl...) {
				sOK = false
			}
		}
		got := Unsat
		if sOK {
			got = s.Solve(assumps...)
		}
		if got != want {
			t.Fatalf("iter %d: inprocessing=%v plain=%v", iter, got, want)
		}
		if got == Sat {
			check := func(batch [][]Lit) {
				for _, cl := range batch {
					sat := false
					for _, l := range cl {
						if s.LitValue(l) == True {
							sat = true
							break
						}
					}
					if !sat {
						t.Fatalf("iter %d: model violates clause %v", iter, cl)
					}
				}
			}
			check(batch1)
			check(batch2)
			for _, a := range assumps {
				if s.LitValue(a) != True {
					t.Fatalf("iter %d: model violates assumption %v", iter, a)
				}
			}
		}
		// A second pass over the enlarged database must preserve the verdict.
		if err := s.Simplify(); err != nil {
			t.Fatalf("iter %d: second Simplify: %v", iter, err)
		}
		got2 := Unsat
		if s.Okay() {
			got2 = s.Solve(assumps...)
		}
		if got2 != want {
			t.Fatalf("iter %d: after second Simplify got %v, want %v", iter, got2, want)
		}
	}
}

func TestSimplifyNoNewClausesIsCheap(t *testing.T) {
	s := New()
	addVars(s, 4)
	s.AddClause(lits(1, 2)...)
	s.AddClause(lits(3, 4)...)
	for v := Var(0); v < 4; v++ {
		s.Freeze(v)
	}
	if err := s.Simplify(); err != nil {
		t.Fatalf("Simplify: %v", err)
	}
	// Second call with an unchanged database: nothing to queue, no effects.
	if err := s.Simplify(); err != nil {
		t.Fatalf("second Simplify: %v", err)
	}
	st := s.Stats()
	if st.Simplifies != 2 || st.SubsumedClauses != 0 || st.StrengthenedClauses != 0 {
		t.Fatalf("unexpected inprocessing effects: %+v", st)
	}
	if s.Solve() != Sat {
		t.Fatalf("expected SAT")
	}
}
