package sat

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

func lits(xs ...int) []Lit {
	out := make([]Lit, len(xs))
	for i, x := range xs {
		if x > 0 {
			out[i] = PosLit(Var(x - 1))
		} else {
			out[i] = NegLit(Var(-x - 1))
		}
	}
	return out
}

// addVars allocates n variables.
func addVars(s *Solver, n int) {
	for i := 0; i < n; i++ {
		s.NewVar()
	}
}

func TestLitEncoding(t *testing.T) {
	v := Var(5)
	p, n := PosLit(v), NegLit(v)
	if p.Var() != v || n.Var() != v {
		t.Fatalf("Var roundtrip failed")
	}
	if p.Sign() || !n.Sign() {
		t.Fatalf("Sign wrong")
	}
	if p.Not() != n || n.Not() != p {
		t.Fatalf("Not wrong")
	}
	if MkLit(v, true) != n || MkLit(v, false) != p {
		t.Fatalf("MkLit wrong")
	}
	if p.XorSign(true) != n || p.XorSign(false) != p {
		t.Fatalf("XorSign wrong")
	}
}

func TestLBool(t *testing.T) {
	if True.Not() != False || False.Not() != True || Undef.Not() != Undef {
		t.Fatalf("LBool.Not wrong")
	}
	if True.XorSign(true) != False || True.XorSign(false) != True {
		t.Fatalf("LBool.XorSign wrong")
	}
	if True.String() != "true" || False.String() != "false" || Undef.String() != "undef" {
		t.Fatalf("LBool.String wrong")
	}
}

func TestTrivialSat(t *testing.T) {
	s := New()
	addVars(s, 2)
	s.AddClause(lits(1, 2)...)
	if got := s.Solve(); got != Sat {
		t.Fatalf("expected SAT, got %v", got)
	}
	// Model must satisfy the clause.
	if s.LitValue(lits(1)[0]) != True && s.LitValue(lits(2)[0]) != True {
		t.Fatalf("model does not satisfy clause")
	}
}

func TestTrivialUnsat(t *testing.T) {
	s := New()
	addVars(s, 1)
	s.AddClause(lits(1)...)
	ok := s.AddClause(lits(-1)...)
	if ok {
		t.Fatalf("expected AddClause to report UNSAT")
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("expected UNSAT, got %v", got)
	}
}

func TestEmptyFormulaIsSat(t *testing.T) {
	s := New()
	addVars(s, 3)
	if got := s.Solve(); got != Sat {
		t.Fatalf("expected SAT on empty formula, got %v", got)
	}
}

func TestUnitPropagationChain(t *testing.T) {
	s := New()
	addVars(s, 5)
	s.AddClause(lits(1)...)
	s.AddClause(lits(-1, 2)...)
	s.AddClause(lits(-2, 3)...)
	s.AddClause(lits(-3, 4)...)
	s.AddClause(lits(-4, 5)...)
	if got := s.Solve(); got != Sat {
		t.Fatalf("expected SAT, got %v", got)
	}
	for v := Var(0); v < 5; v++ {
		if s.Value(v) != True {
			t.Fatalf("var %d should be forced true", v+1)
		}
	}
}

func TestTautologyIgnored(t *testing.T) {
	s := New()
	addVars(s, 2)
	if !s.AddClause(lits(1, -1)...) {
		t.Fatalf("tautology must not make the DB unsat")
	}
	if s.NumClauses() != 0 {
		t.Fatalf("tautology should not be stored, have %d clauses", s.NumClauses())
	}
	s.AddClause(lits(2)...)
	if s.Solve() != Sat {
		t.Fatalf("expected SAT")
	}
}

func TestDuplicateLiteralsCollapsed(t *testing.T) {
	s := New()
	addVars(s, 1)
	s.AddClause(lits(1, 1, 1)...)
	if s.Solve() != Sat || s.Value(0) != True {
		t.Fatalf("duplicate literals mishandled")
	}
}

// pigeonhole builds PHP(p, h): p pigeons into h holes, unsat when p > h.
func pigeonhole(s *Solver, pigeons, holes int) {
	vars := make([][]Var, pigeons)
	for i := range vars {
		vars[i] = make([]Var, holes)
		for j := range vars[i] {
			vars[i][j] = s.NewVar()
		}
	}
	// Each pigeon in some hole.
	for i := 0; i < pigeons; i++ {
		cl := make([]Lit, holes)
		for j := 0; j < holes; j++ {
			cl[j] = PosLit(vars[i][j])
		}
		s.AddClause(cl...)
	}
	// No two pigeons share a hole.
	for j := 0; j < holes; j++ {
		for a := 0; a < pigeons; a++ {
			for b := a + 1; b < pigeons; b++ {
				s.AddClause(NegLit(vars[a][j]), NegLit(vars[b][j]))
			}
		}
	}
}

func TestPigeonholeUnsat(t *testing.T) {
	for h := 2; h <= 6; h++ {
		s := New()
		pigeonhole(s, h+1, h)
		if got := s.Solve(); got != Unsat {
			t.Fatalf("PHP(%d,%d): expected UNSAT, got %v", h+1, h, got)
		}
	}
}

func TestPigeonholeSat(t *testing.T) {
	for h := 2; h <= 6; h++ {
		s := New()
		pigeonhole(s, h, h)
		if got := s.Solve(); got != Sat {
			t.Fatalf("PHP(%d,%d): expected SAT, got %v", h, h, got)
		}
	}
}

// bruteForce decides satisfiability of a CNF over n vars by enumeration.
func bruteForce(n int, cnf [][]Lit) bool {
	for m := 0; m < 1<<n; m++ {
		ok := true
		for _, cl := range cnf {
			sat := false
			for _, l := range cl {
				val := m>>uint(l.Var())&1 == 1
				if val != l.Sign() {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func randomCNF(rng *rand.Rand, nVars, nClauses, width int) [][]Lit {
	cnf := make([][]Lit, nClauses)
	for i := range cnf {
		w := 1 + rng.Intn(width)
		cl := make([]Lit, w)
		for j := range cl {
			cl[j] = MkLit(Var(rng.Intn(nVars)), rng.Intn(2) == 1)
		}
		cnf[i] = cl
	}
	return cnf
}

func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	for iter := 0; iter < 400; iter++ {
		nVars := 3 + rng.Intn(8)
		nClauses := 1 + rng.Intn(30)
		cnf := randomCNF(rng, nVars, nClauses, 4)
		want := bruteForce(nVars, cnf)
		s := New()
		addVars(s, nVars)
		dbOK := true
		for _, cl := range cnf {
			if !s.AddClause(cl...) {
				dbOK = false
				break
			}
		}
		got := false
		if dbOK {
			got = s.Solve() == Sat
		}
		if got != want {
			t.Fatalf("iter %d: solver=%v brute=%v cnf=%v", iter, got, want, cnf)
		}
		if got {
			// Model must satisfy every clause.
			for _, cl := range cnf {
				sat := false
				for _, l := range cl {
					if s.LitValue(l) == True {
						sat = true
						break
					}
				}
				if !sat {
					t.Fatalf("iter %d: model violates clause %v", iter, cl)
				}
			}
		}
	}
}

func TestIncrementalSolving(t *testing.T) {
	s := New()
	addVars(s, 4)
	s.AddClause(lits(1, 2)...)
	if s.Solve() != Sat {
		t.Fatalf("phase 1 should be SAT")
	}
	s.AddClause(lits(-1)...)
	if s.Solve() != Sat {
		t.Fatalf("phase 2 should be SAT")
	}
	if s.Value(1) != True {
		t.Fatalf("x2 must be true after x1 forced false")
	}
	s.AddClause(lits(-2)...)
	if s.Solve() != Unsat {
		t.Fatalf("phase 3 should be UNSAT")
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	addVars(s, 3)
	s.AddClause(lits(-1, 2)...)
	s.AddClause(lits(-2, 3)...)
	if s.Solve(lits(1)[0]) != Sat {
		t.Fatalf("assuming x1 should be SAT")
	}
	if s.Value(2) != True {
		t.Fatalf("x3 should be implied true")
	}
	if s.Solve(lits(1)[0], lits(-3)[0]) != Unsat {
		t.Fatalf("assuming x1 and ¬x3 should be UNSAT")
	}
	fa := s.FailedAssumptions()
	if len(fa) == 0 {
		t.Fatalf("expected failed assumptions")
	}
	// Solver must remain usable and unpolluted by assumptions.
	if s.Solve() != Sat {
		t.Fatalf("solver should still be SAT without assumptions")
	}
	if s.Solve(lits(-1)[0]) != Sat {
		t.Fatalf("assuming ¬x1 should be SAT")
	}
}

func TestFailedAssumptionsSubset(t *testing.T) {
	s := New()
	addVars(s, 5)
	s.AddClause(lits(-1, -2)...)
	// Assume many irrelevant things plus the conflicting pair.
	as := lits(3, 4, 5, 1, 2)
	if s.Solve(as...) != Unsat {
		t.Fatalf("expected UNSAT")
	}
	fa := s.FailedAssumptions()
	for _, l := range fa {
		found := false
		for _, a := range as {
			if a == l {
				found = true
			}
		}
		if !found {
			t.Fatalf("failed assumption %v not among assumptions", l)
		}
	}
	// The failed set must itself be unsatisfiable with the formula.
	s2 := New()
	addVars(s2, 5)
	s2.AddClause(lits(-1, -2)...)
	if s2.Solve(fa...) != Unsat {
		t.Fatalf("failed-assumption set is not sufficient for UNSAT")
	}
}

func TestContradictoryAssumptions(t *testing.T) {
	s := New()
	addVars(s, 2)
	s.AddClause(lits(1, 2)...)
	if s.Solve(lits(1)[0], lits(-1)[0]) != Unsat {
		t.Fatalf("contradictory assumptions should be UNSAT")
	}
}

func TestCoreSimple(t *testing.T) {
	s := New()
	s.EnableProofTracing()
	addVars(s, 4)
	s.AddClauseTagged(0, lits(1))
	s.AddClauseTagged(1, lits(-1, 2))
	s.AddClauseTagged(2, lits(-2))
	s.AddClauseTagged(3, lits(3, 4)) // irrelevant
	if s.Solve() != Unsat {
		t.Fatalf("expected UNSAT")
	}
	core := s.Core()
	seen := map[int64]bool{}
	for _, tag := range core {
		seen[tag] = true
	}
	if !seen[0] || !seen[1] || !seen[2] {
		t.Fatalf("core %v must contain tags 0,1,2", core)
	}
	if seen[3] {
		t.Fatalf("core %v must not contain irrelevant tag 3", core)
	}
}

// TestCoreSoundRandom checks, on random UNSAT instances, that the reported
// core is itself unsatisfiable.
func TestCoreSoundRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tested := 0
	for iter := 0; iter < 600 && tested < 120; iter++ {
		nVars := 3 + rng.Intn(6)
		nClauses := 5 + rng.Intn(40)
		cnf := randomCNF(rng, nVars, nClauses, 3)
		if bruteForce(nVars, cnf) {
			continue
		}
		tested++
		s := New()
		s.EnableProofTracing()
		addVars(s, nVars)
		ok := true
		for i, cl := range cnf {
			if !s.AddClauseTagged(int64(i), cl) {
				ok = false
				break
			}
		}
		if ok && s.Solve() != Unsat {
			t.Fatalf("iter %d: expected UNSAT", iter)
		}
		core := s.Core()
		sub := make([][]Lit, 0, len(core))
		for _, tag := range core {
			sub = append(sub, cnf[tag])
		}
		if bruteForce(nVars, sub) {
			t.Fatalf("iter %d: core %v is satisfiable; cnf=%v", iter, core, cnf)
		}
	}
	if tested < 20 {
		t.Fatalf("too few UNSAT instances exercised: %d", tested)
	}
}

// TestCoreSoundPigeonhole checks core extraction on structured instances.
func TestCoreSoundPigeonhole(t *testing.T) {
	s := New()
	s.EnableProofTracing()
	holes := 4
	pigeons := holes + 1
	vars := make([][]Var, pigeons)
	for i := range vars {
		vars[i] = make([]Var, holes)
		for j := range vars[i] {
			vars[i][j] = s.NewVar()
		}
	}
	tag := int64(0)
	tags := make(map[int64][]Lit)
	add := func(cl []Lit) {
		s.AddClauseTagged(tag, cl)
		tags[tag] = cl
		tag++
	}
	for i := 0; i < pigeons; i++ {
		cl := make([]Lit, holes)
		for j := 0; j < holes; j++ {
			cl[j] = PosLit(vars[i][j])
		}
		add(cl)
	}
	for j := 0; j < holes; j++ {
		for a := 0; a < pigeons; a++ {
			for b := a + 1; b < pigeons; b++ {
				add([]Lit{NegLit(vars[a][j]), NegLit(vars[b][j])})
			}
		}
	}
	if s.Solve() != Unsat {
		t.Fatalf("PHP must be UNSAT")
	}
	core := s.Core()
	if len(core) == 0 {
		t.Fatalf("empty core for PHP")
	}
	// Re-solve the core subset: must still be UNSAT.
	s2 := New()
	for i := 0; i < pigeons*holes; i++ {
		s2.NewVar()
	}
	for _, tg := range core {
		s2.AddClause(tags[tg]...)
	}
	if s2.Solve() != Unsat {
		t.Fatalf("PHP core is satisfiable")
	}
}

func TestCoreUnderAssumptions(t *testing.T) {
	s := New()
	s.EnableProofTracing()
	addVars(s, 4)
	s.AddClauseTagged(0, lits(-1, 2))
	s.AddClauseTagged(1, lits(-2, 3))
	s.AddClauseTagged(2, lits(-3, -4))
	s.AddClauseTagged(3, lits(1, 4)) // irrelevant under the assumptions below
	if s.Solve(lits(1)[0], lits(4)[0]) != Unsat {
		t.Fatalf("expected UNSAT under assumptions")
	}
	core := s.Core()
	seen := map[int64]bool{}
	for _, tg := range core {
		seen[tg] = true
	}
	if !seen[0] || !seen[1] || !seen[2] {
		t.Fatalf("core %v must contain the implication chain", core)
	}
}

func TestDecidableRestriction(t *testing.T) {
	s := New()
	addVars(s, 2)
	s.AddClause(lits(1, 2)...)
	s.SetDecidable(0, false)
	s.SetDecidable(1, false)
	// Both vars unassignable by decision; x1∨x2 has no unit implication, so
	// the solver must still find a model by... it cannot. This documents
	// that disabling all deciders over a non-implied clause would block;
	// instead verify decidable vars are honored when a model exists via
	// propagation.
	s.AddClause(lits(1)...)
	if s.Solve() != Sat {
		t.Fatalf("expected SAT via propagation only")
	}
}

func TestConflictBudget(t *testing.T) {
	s := New()
	pigeonhole(s, 9, 8)
	s.ConflictBudget = 5
	if got := s.Solve(); got != Unknown {
		t.Fatalf("expected Unknown under tiny budget, got %v", got)
	}
	// Budget removed: must finish.
	s.ConflictBudget = 0
	if got := s.Solve(); got != Unsat {
		t.Fatalf("expected UNSAT, got %v", got)
	}
}

func TestInterrupt(t *testing.T) {
	s := New()
	pigeonhole(s, 9, 8)
	calls := 0
	s.Interrupt = func() bool {
		calls++
		return calls > 2
	}
	if got := s.Solve(); got != Unknown {
		t.Fatalf("expected Unknown on interrupt, got %v", got)
	}
}

func TestInterruptPrompt(t *testing.T) {
	// An asynchronous interrupt must abort Solve within milliseconds, not
	// after a restart's worth of conflicts: the hook is polled on a bounded
	// stride in both the search loop and the propagation loop.
	s := New()
	pigeonhole(s, 12, 11) // hard enough to run for many seconds unaided
	var stop atomic.Bool
	s.Interrupt = stop.Load
	const armAfter = 30 * time.Millisecond
	go func() {
		time.Sleep(armAfter)
		stop.Store(true)
	}()
	t0 := time.Now()
	got := s.Solve()
	elapsed := time.Since(t0)
	if got == Unsat && elapsed < armAfter {
		t.Skip("instance solved before the interrupt armed")
	}
	if got != Unknown {
		t.Fatalf("expected Unknown on interrupt, got %v after %s", got, elapsed)
	}
	if latency := elapsed - armAfter; latency > time.Second {
		t.Fatalf("interrupt latency %s, want milliseconds", latency)
	}
	// The solver must remain usable after an interrupted run.
	stop.Store(false)
	s.ConflictBudget = 50
	if got := s.Solve(); got != Unknown {
		t.Fatalf("post-interrupt solve under budget: got %v", got)
	}
}

func TestLuby(t *testing.T) {
	want := []float64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(2, i); got != w {
			t.Fatalf("luby(2,%d)=%v want %v", i, got, w)
		}
	}
}

func TestVarOrderHeap(t *testing.T) {
	act := []float64{1, 5, 3, 2, 4}
	o := newVarOrder(&act)
	for v := Var(0); v < 5; v++ {
		o.insert(v)
	}
	var got []Var
	for !o.empty() {
		got = append(got, o.removeMin())
	}
	want := []Var{1, 4, 2, 3, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("heap order got %v want %v", got, want)
		}
	}
}

func TestVarOrderDecrease(t *testing.T) {
	act := []float64{1, 2, 3}
	o := newVarOrder(&act)
	for v := Var(0); v < 3; v++ {
		o.insert(v)
	}
	act[0] = 10
	o.decreased(0)
	if o.removeMin() != 0 {
		t.Fatalf("var 0 should be at top after bump")
	}
}

func TestStatsPopulated(t *testing.T) {
	s := New()
	pigeonhole(s, 5, 4)
	s.Solve()
	st := s.Stats()
	if st.Conflicts == 0 || st.Decisions == 0 || st.Propagations == 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
}

func TestManySolveCallsStable(t *testing.T) {
	s := New()
	addVars(s, 8)
	s.AddClause(lits(1, 2, 3)...)
	s.AddClause(lits(-1, 4)...)
	for i := 0; i < 50; i++ {
		var as []Lit
		if i%2 == 0 {
			as = lits(1)
		} else {
			as = lits(-4)
		}
		got := s.Solve(as...)
		if got != Sat {
			t.Fatalf("iteration %d: expected SAT got %v", i, got)
		}
	}
}

func TestAddClauseAfterSolve(t *testing.T) {
	s := New()
	addVars(s, 3)
	s.AddClause(lits(1, 2, 3)...)
	if s.Solve() != Sat {
		t.Fatalf("expect SAT")
	}
	s.AddClause(lits(-1)...)
	s.AddClause(lits(-2)...)
	if s.Solve() != Sat {
		t.Fatalf("expect SAT")
	}
	if s.Value(2) != True {
		t.Fatalf("x3 must be true")
	}
}

func TestLitString(t *testing.T) {
	if PosLit(2).String() != "3" || NegLit(2).String() != "-3" {
		t.Fatalf("Lit.String wrong: %s %s", PosLit(2), NegLit(2))
	}
	if LitUndef.String() != "undef" {
		t.Fatalf("LitUndef.String wrong")
	}
}

func TestStatusString(t *testing.T) {
	if Sat.String() != "SAT" || Unsat.String() != "UNSAT" || Unknown.String() != "UNKNOWN" {
		t.Fatalf("Status.String wrong")
	}
}
