package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadDIMACS parses a CNF in DIMACS format into the solver, allocating
// variables as needed. It returns the number of clauses read. Comment
// lines ('c ...') and the problem line ('p cnf V C') are accepted; the
// declared counts are advisory.
func (s *Solver) ReadDIMACS(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	clauses := 0
	var cur []Lit
	ensure := func(v int) error {
		if v <= 0 {
			return fmt.Errorf("dimacs: bad variable %d", v)
		}
		for s.NumVars() < v {
			s.NewVar()
		}
		return nil
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == 'c' || line[0] == '%' {
			continue
		}
		if line[0] == 'p' {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return clauses, fmt.Errorf("dimacs: bad problem line %q", line)
			}
			v, err := strconv.Atoi(fields[2])
			if err != nil || v < 0 {
				return clauses, fmt.Errorf("dimacs: bad variable count %q", fields[2])
			}
			for s.NumVars() < v {
				s.NewVar()
			}
			continue
		}
		for _, tok := range strings.Fields(line) {
			n, err := strconv.Atoi(tok)
			if err != nil {
				return clauses, fmt.Errorf("dimacs: bad literal %q", tok)
			}
			if n == 0 {
				s.AddClause(cur...)
				cur = cur[:0]
				clauses++
				continue
			}
			v := n
			if v < 0 {
				v = -v
			}
			if err := ensure(v); err != nil {
				return clauses, err
			}
			cur = append(cur, MkLit(Var(v-1), n < 0))
		}
	}
	if err := sc.Err(); err != nil {
		return clauses, err
	}
	if len(cur) > 0 {
		return clauses, fmt.Errorf("dimacs: clause not terminated by 0")
	}
	return clauses, nil
}

// WriteDIMACS emits the solver's original clauses as DIMACS CNF.
func (s *Solver) WriteDIMACS(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "p cnf %d %d\n", s.NumVars(), len(s.clauses))
	for _, c := range s.clauses {
		for _, l := range s.db.lits(c) {
			n := int(l.Var()) + 1
			if l.Sign() {
				n = -n
			}
			fmt.Fprintf(bw, "%d ", n)
		}
		fmt.Fprintln(bw, 0)
	}
	return bw.Flush()
}

// WriteModelDIMACS emits the current model as a DIMACS "v" line.
func (s *Solver) WriteModelDIMACS(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprint(bw, "v")
	for v := 0; v < len(s.model); v++ {
		n := v + 1
		if s.model[v] != True {
			n = -n
		}
		fmt.Fprintf(bw, " %d", n)
	}
	fmt.Fprintln(bw, " 0")
	return bw.Flush()
}
