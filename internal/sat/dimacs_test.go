package sat

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestReadDIMACSBasic(t *testing.T) {
	src := `c a comment
p cnf 3 3
1 -2 0
2 3 0
-1 0
`
	s := New()
	n, err := s.ReadDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || s.NumVars() != 3 {
		t.Fatalf("counts wrong: %d clauses %d vars", n, s.NumVars())
	}
	if s.Solve() != Sat {
		t.Fatalf("expected SAT")
	}
	if s.Value(0) != False {
		t.Fatalf("x1 forced false")
	}
}

func TestReadDIMACSMultilineClause(t *testing.T) {
	src := "p cnf 2 1\n1\n2\n0\n"
	s := New()
	n, err := s.ReadDIMACS(strings.NewReader(src))
	if err != nil || n != 1 {
		t.Fatalf("multi-line clause mishandled: %d %v", n, err)
	}
}

func TestReadDIMACSErrors(t *testing.T) {
	for _, bad := range []string{
		"p cnf x 1\n",
		"p dnf 1 1\n",
		"1 a 0\n",
		"1 2\n", // unterminated
	} {
		s := New()
		if _, err := s.ReadDIMACS(strings.NewReader(bad)); err == nil {
			t.Fatalf("input %q must fail", bad)
		}
	}
}

func TestDIMACSRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 60; iter++ {
		nVars := 3 + rng.Intn(6)
		cnf := randomCNF(rng, nVars, 5+rng.Intn(25), 3)
		s1 := New()
		addVars(s1, nVars)
		ok := true
		for _, cl := range cnf {
			if !s1.AddClause(cl...) {
				ok = false
				break
			}
		}
		if !ok {
			continue // trivially UNSAT at load; roundtrip of partial DB unhelpful
		}
		var buf bytes.Buffer
		if err := s1.WriteDIMACS(&buf); err != nil {
			t.Fatal(err)
		}
		s2 := New()
		if _, err := s2.ReadDIMACS(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatal(err)
		}
		r1, r2 := s1.Solve(), s2.Solve()
		if r1 != r2 {
			t.Fatalf("iter %d: verdicts differ %v vs %v\n%s", iter, r1, r2, buf.String())
		}
	}
}

func TestWriteModelDIMACS(t *testing.T) {
	s := New()
	addVars(s, 2)
	s.AddClause(lits(1)...)
	s.AddClause(lits(-2)...)
	if s.Solve() != Sat {
		t.Fatalf("expected SAT")
	}
	var buf bytes.Buffer
	if err := s.WriteModelDIMACS(&buf); err != nil {
		t.Fatal(err)
	}
	got := strings.TrimSpace(buf.String())
	if got != "v 1 -2 0" {
		t.Fatalf("model line %q", got)
	}
}
