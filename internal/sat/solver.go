package sat

import (
	"sort"

	"emmver/internal/obs"
)

// Solver is an incremental CDCL SAT solver. The zero value is not usable;
// construct with New.
//
// Typical use:
//
//	s := sat.New()
//	v := s.NewVar()
//	s.AddClause(sat.PosLit(v))
//	if s.Solve() == sat.Sat { _ = s.Value(v) }
//
// Clauses may be added between Solve calls. Solve accepts assumption
// literals; after an Unsat answer under assumptions, FailedAssumptions
// reports a subset of assumptions sufficient for unsatisfiability, and (when
// proof tracing is enabled) Core reports provenance tags of a sufficient
// subset of original clauses.
//
// Internally the solver is built for cache locality: clause literals live in
// one flat arena addressed by 4-byte crefs (see arena.go), watchers carry
// blocking literals, and binary clauses propagate through dedicated
// implication lists that never touch the clause store.
type Solver struct {
	ok bool // false once the clause database is UNSAT at level 0

	db      clauseDB
	clauses []cref // original problem clauses
	learnts []cref

	watches    [][]watcher    // literal -> watch list (clauses of size >= 3)
	binWatches [][]binWatcher // literal -> binary implication list
	assigns    []LBool        // variable assignment
	levels     []int32        // decision level of each assigned variable
	reasons    []cref         // antecedent clause of each implied variable
	polarity   []bool         // saved phase per variable
	decider    []bool         // whether the variable may be picked as a decision

	trail    []Lit
	trailLim []int
	qhead    int

	order    *varOrder
	activity []float64
	varInc   float64
	claInc   float32

	seen           []byte
	analyzeScratch []Lit
	addTmp         []Lit // scratch for AddClause normalization

	model         []LBool
	conflictAssum []Lit // failed assumptions from the last Unsat answer

	// Restart selects the restart strategy (default RestartEMA); see
	// restart.go. May be changed between Solve calls.
	Restart RestartMode
	ema     emaState

	// LBD machinery: a per-level stamp array for counting distinct decision
	// levels in a clause, and live clause counts per learnt tier.
	lbdStamp []uint32
	lbdGen   uint32
	nTier    [3]int
	localMax int // reduceDB fires when the local tier outgrows this

	// Inprocessing state (simplify.go): freeze counts and the eliminated
	// flag per variable, plus the clauses deleted by variable elimination,
	// kept for model reconstruction.
	frozen      []int32
	elimed      []bool
	elimClauses [][]Lit // each record: the eliminated variable's literal first
	simpMark    int     // clauses with cref >= simpMark are new since last Simplify
	occ         [][]cref
	abst        []uint64 // per-clause variable signature (subsumption prefilter)
	litStamp    []uint32
	litGen      uint32

	// Proof tracing.
	trace      bool
	proof      proofStore
	finalChain []int32 // antecedents of the final (empty) conflict
	rootCause  []int32 // chain when AddClause itself hit UNSAT

	// Budgets.
	ConflictBudget int64       // ≤0 means unlimited
	Interrupt      func() bool // polled at a bounded stride; returning true aborts Solve with Unknown

	// Clause sharing (cooperative portfolio solving). Export, when non-nil,
	// receives every learnt clause that passes the sharing filter (glue <=
	// shareLBD or binary, at most shareMaxLits literals). The slice is the
	// solver's analysis scratch: the hook must copy what it keeps and must
	// not call back into the solver. Import, when non-nil, is polled at
	// Solve entry and after every restart (decision level 0); the hook calls
	// add once per foreign clause, and add reports whether the clause was
	// incorporated. Both hooks run on the Solve goroutine. Importing is
	// disabled while proof tracing is active — a foreign clause has no
	// resolution derivation in this solver's proof log.
	Export func(lits []Lit, lbd int)
	Import func(add func(lits []Lit, lbd int) bool)

	// ShareLBD and ShareMaxLits override the package-default export filter
	// for this solver instance when positive (0 keeps the defaults: glue <=
	// 6 or binary, at most 30 literals). Tunable from the engine so a
	// distributed fleet can trade bus traffic against lemma quality.
	ShareLBD     int
	ShareMaxLits int

	interrupted bool   // propagate observed Interrupt firing mid-queue
	pollTick    uint32 // search-loop iterations since the last Interrupt poll

	stats Stats

	// Observability (AttachObs): registry counters the solver publishes
	// cumulative-stat deltas into once per Solve call and on demand via
	// PublishObs. Nil counters make publication a no-op.
	obsAttached  bool
	obsPub       Stats // cumulative values already published
	obsPubNC     int   // NumClauses already published
	obsPubNV     int   // NumVars already published
	obsSolves    *obs.Counter
	obsConfl     *obs.Counter
	obsProps     *obs.Counter
	obsBinProps  *obs.Counter
	obsDecs      *obs.Counter
	obsRestarts  *obs.Counter
	obsRestLuby  *obs.Counter
	obsRestEMA   *obs.Counter
	obsRestBlock *obs.Counter
	obsReduces   *obs.Counter
	obsLAdded    *obs.Counter
	obsLDeleted  *obs.Counter
	obsLBDSum    *obs.Counter
	obsSimp      *obs.Counter
	obsSubsumed  *obs.Counter
	obsStrength  *obs.Counter
	obsElimVars  *obs.Counter
	obsClauses   *obs.Counter
	obsVars      *obs.Counter
	obsTierCore  *obs.Gauge
	obsTierMid   *obs.Gauge
	obsTierLocal *obs.Gauge
}

// Stats holds cumulative search statistics.
type Stats struct {
	Decisions    int64
	Propagations int64
	// BinPropagations counts propagations served by the binary implication
	// lists (a subset of Propagations' enqueue sources, reported separately
	// because they bypass the clause store entirely).
	BinPropagations int64
	Conflicts       int64
	Restarts        int64
	// ReduceDBs counts learnt-database reduction sweeps.
	ReduceDBs      int64
	LearntsAdded   int64
	LearntsDeleted int64
	MaxVar         int
	// RestartsLuby and RestartsEMA split Restarts by trigger (Luby budget
	// vs glue-EMA threshold); RestartsBlocked counts EMA restarts postponed
	// because the trail was unusually deep.
	RestartsLuby    int64
	RestartsEMA     int64
	RestartsBlocked int64
	// LBDSum is the total glue over all learnt clauses at record time, so
	// LBDSum/LearntsAdded is the mean learnt LBD.
	LBDSum int64
	// Inprocessing tallies (Simplify).
	Simplifies          int64
	SubsumedClauses     int64
	StrengthenedClauses int64
	EliminatedVars      int64
	// Clause-sharing tallies: learnt clauses offered to the Export hook and
	// foreign clauses incorporated through the Import hook.
	ExportedClauses int64
	ImportedClauses int64
}

// New constructs an empty solver.
func New() *Solver {
	return &Solver{
		ok:       true,
		varInc:   1.0,
		claInc:   1.0,
		localMax: 2000,
	}
}

// TierSizes returns the live learnt-clause counts per tier (core glue
// clauses, mid-tier, local churn pool).
func (s *Solver) TierSizes() (core, mid, local int) {
	return s.nTier[tierCore], s.nTier[tierMid], s.nTier[tierLocal]
}

// EnableProofTracing turns on resolution-chain recording. It must be called
// before any clause is added.
func (s *Solver) EnableProofTracing() {
	if len(s.clauses) > 0 || len(s.trail) > 0 {
		panic("sat: EnableProofTracing must be called before adding clauses")
	}
	s.trace = true
}

// Tracing reports whether proof tracing is enabled.
func (s *Solver) Tracing() bool { return s.trace }

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return len(s.assigns) }

// NumClauses returns the number of original clauses currently attached.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// ClauseAt returns a copy of the i-th stored original clause (literal
// order is internal and may differ from the order given to AddClause).
func (s *Solver) ClauseAt(i int) []Lit {
	return append([]Lit(nil), s.db.lits(s.clauses[i])...)
}

// NumLearnts returns the number of learnt clauses currently attached.
func (s *Solver) NumLearnts() int { return len(s.learnts) }

// Stats returns cumulative statistics.
func (s *Solver) Stats() Stats { return s.stats }

// AttachObs binds the solver to an observer's metrics registry under the
// canonical solver.* names. Several solvers may attach to one registry;
// each publishes deltas, so the registry holds fleet-wide totals while
// per-solver breakdowns stay available through Stats. Publication happens
// at the end of every Solve call and on PublishObs — never inside the
// search loop, so attaching costs nothing measurable.
func (s *Solver) AttachObs(o *obs.Observer) {
	reg := o.Registry()
	if reg == nil {
		return
	}
	s.obsAttached = true
	s.obsSolves = reg.Counter(obs.MSolves)
	s.obsConfl = reg.Counter(obs.MConflicts)
	s.obsProps = reg.Counter(obs.MPropagations)
	s.obsBinProps = reg.Counter(obs.MBinPropagations)
	s.obsDecs = reg.Counter(obs.MDecisions)
	s.obsRestarts = reg.Counter(obs.MRestarts)
	s.obsRestLuby = reg.Counter(obs.MRestartsLuby)
	s.obsRestEMA = reg.Counter(obs.MRestartsEMA)
	s.obsRestBlock = reg.Counter(obs.MRestartsBlocked)
	s.obsReduces = reg.Counter(obs.MReduceDBs)
	s.obsLAdded = reg.Counter(obs.MLearntsAdded)
	s.obsLDeleted = reg.Counter(obs.MLearntsDeleted)
	s.obsLBDSum = reg.Counter(obs.MLBDSum)
	s.obsSimp = reg.Counter(obs.MSimplifies)
	s.obsSubsumed = reg.Counter(obs.MSubsumedClauses)
	s.obsStrength = reg.Counter(obs.MStrengthenedClauses)
	s.obsElimVars = reg.Counter(obs.MEliminatedVars)
	s.obsClauses = reg.Counter(obs.MSolverClauses)
	s.obsVars = reg.Counter(obs.MSolverVars)
	s.obsTierCore = reg.Gauge(obs.MTierCore)
	s.obsTierMid = reg.Gauge(obs.MTierMid)
	s.obsTierLocal = reg.Gauge(obs.MTierLocal)
}

// PublishObs pushes the not-yet-published part of the cumulative counters
// into the attached registry (no-op when detached). The BMC engine calls
// it at depth boundaries to cover clauses added between Solve calls.
func (s *Solver) PublishObs() {
	if !s.obsAttached {
		return
	}
	cur := s.stats
	s.obsConfl.Add(cur.Conflicts - s.obsPub.Conflicts)
	s.obsProps.Add(cur.Propagations - s.obsPub.Propagations)
	s.obsBinProps.Add(cur.BinPropagations - s.obsPub.BinPropagations)
	s.obsDecs.Add(cur.Decisions - s.obsPub.Decisions)
	s.obsRestarts.Add(cur.Restarts - s.obsPub.Restarts)
	s.obsRestLuby.Add(cur.RestartsLuby - s.obsPub.RestartsLuby)
	s.obsRestEMA.Add(cur.RestartsEMA - s.obsPub.RestartsEMA)
	s.obsRestBlock.Add(cur.RestartsBlocked - s.obsPub.RestartsBlocked)
	s.obsReduces.Add(cur.ReduceDBs - s.obsPub.ReduceDBs)
	s.obsLAdded.Add(cur.LearntsAdded - s.obsPub.LearntsAdded)
	s.obsLDeleted.Add(cur.LearntsDeleted - s.obsPub.LearntsDeleted)
	s.obsLBDSum.Add(cur.LBDSum - s.obsPub.LBDSum)
	s.obsSimp.Add(cur.Simplifies - s.obsPub.Simplifies)
	s.obsSubsumed.Add(cur.SubsumedClauses - s.obsPub.SubsumedClauses)
	s.obsStrength.Add(cur.StrengthenedClauses - s.obsPub.StrengthenedClauses)
	s.obsElimVars.Add(cur.EliminatedVars - s.obsPub.EliminatedVars)
	// Tier sizes are instantaneous, not cumulative: publish as high-water
	// gauges so a fleet of solvers reports its largest tiers.
	s.obsTierCore.Max(int64(s.nTier[tierCore]))
	s.obsTierMid.Max(int64(s.nTier[tierMid]))
	s.obsTierLocal.Max(int64(s.nTier[tierLocal]))
	s.obsPub = cur
	nc, nv := s.NumClauses(), s.NumVars()
	s.obsClauses.Add(int64(nc - s.obsPubNC))
	s.obsVars.Add(int64(nv - s.obsPubNV))
	s.obsPubNC, s.obsPubNV = nc, nv
}

// NewVar allocates a fresh variable.
func (s *Solver) NewVar() Var {
	v := Var(len(s.assigns))
	s.assigns = append(s.assigns, Undef)
	s.levels = append(s.levels, 0)
	s.reasons = append(s.reasons, crefUndef)
	s.polarity = append(s.polarity, true) // default phase: false
	s.decider = append(s.decider, true)
	s.activity = append(s.activity, 0)
	s.watches = append(s.watches, nil, nil)
	s.binWatches = append(s.binWatches, nil, nil)
	s.seen = append(s.seen, 0)
	s.frozen = append(s.frozen, 0)
	s.elimed = append(s.elimed, false)
	if s.order == nil {
		s.order = newVarOrder(&s.activity)
	}
	s.order.insert(v)
	s.stats.MaxVar = len(s.assigns)
	return v
}

// SetDecidable controls whether v may be chosen as a decision variable.
// Non-decidable variables can still be assigned by propagation.
func (s *Solver) SetDecidable(v Var, d bool) { s.decider[v] = d }

// Value returns the value of v in the most recent satisfying model.
func (s *Solver) Value(v Var) LBool {
	if int(v) >= len(s.model) {
		return Undef
	}
	return s.model[v]
}

// LitValue returns the model value of literal l.
func (s *Solver) LitValue(l Lit) LBool { return s.Value(l.Var()).XorSign(l.Sign()) }

// FailedAssumptions returns the subset of the last Solve's assumptions that
// was used to derive Unsat. Valid only immediately after an Unsat answer.
func (s *Solver) FailedAssumptions() []Lit { return s.conflictAssum }

// value is the current (search-time) value of a literal.
func (s *Solver) value(l Lit) LBool { return s.assigns[l.Var()].XorSign(l.Sign()) }

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// AddClause adds an untagged clause. It returns false if the clause database
// has become unsatisfiable at level 0.
func (s *Solver) AddClause(lits ...Lit) bool { return s.AddClauseTagged(-1, lits) }

// AddClauseTagged adds a clause carrying a provenance tag used by Core.
// It returns false if the clause database has become unsatisfiable.
func (s *Solver) AddClauseTagged(tag int64, lits []Lit) bool {
	if !s.ok {
		return false
	}
	if s.decisionLevel() != 0 {
		s.cancelUntil(0)
	}
	// Normalize: sort, drop duplicates, detect tautologies. The scratch
	// buffer keeps clause addition allocation-free (the literals are copied
	// into the arena on alloc).
	tmp := append(s.addTmp[:0], lits...)
	sortLits(tmp)
	out := tmp[:0]
	var prev Lit = LitUndef
	for _, l := range tmp {
		if int(l.Var()) >= len(s.assigns) {
			panic("sat: literal references unallocated variable")
		}
		if s.elimed[l.Var()] {
			// The frozen-literal protocol was violated: a variable removed
			// by Simplify's bounded elimination is being constrained again.
			panic("sat: clause references eliminated variable (missing Freeze before Simplify)")
		}
		if l == prev {
			continue
		}
		if prev != LitUndef && l == prev.Not() {
			s.addTmp = tmp
			return true // tautology
		}
		if !s.trace {
			// Without tracing we may freely strengthen at level 0.
			if s.value(l) == True {
				s.addTmp = tmp
				return true
			}
			if s.value(l) == False {
				continue
			}
		} else if s.value(l) == True && s.levels[l.Var()] == 0 {
			s.addTmp = tmp
			return true // satisfied at level 0: redundant, safe to drop
		}
		out = append(out, l)
		prev = l
	}

	// Count non-false literals and move them to the front for watching.
	nonFalse := 0
	for i, l := range out {
		if s.value(l) != False {
			out[i], out[nonFalse] = out[nonFalse], out[i]
			nonFalse++
		}
	}

	id := int32(-1)
	if s.trace {
		id = s.proof.addOriginal(tag)
	}
	c := s.db.alloc(out, false, id)
	s.addTmp = tmp

	switch {
	case nonFalse == 0:
		// Conflict at level 0: the database is UNSAT.
		s.ok = false
		if s.trace {
			s.rootCause = s.levelZeroChain(c)
		}
		if s.db.size(c) > 0 {
			s.clauses = append(s.clauses, c)
		}
		return false
	case nonFalse == 1:
		// Effectively a unit clause.
		s.clauses = append(s.clauses, c)
		s.uncheckedEnqueue(s.db.lits(c)[0], c)
		if confl := s.propagate(); confl != crefUndef {
			s.ok = false
			if s.trace {
				s.rootCause = s.levelZeroChain(confl)
			}
			return false
		}
		return true
	default:
		s.clauses = append(s.clauses, c)
		s.attach(c)
		return true
	}
}

func sortLits(lits []Lit) {
	// Insertion sort: clause literal lists are short.
	for i := 1; i < len(lits); i++ {
		l := lits[i]
		j := i - 1
		for j >= 0 && lits[j] > l {
			lits[j+1] = lits[j]
			j--
		}
		lits[j+1] = l
	}
}

// attach hooks a clause into propagation: binary clauses go to the
// implication lists, longer clauses to the two-watched-literal scheme.
func (s *Solver) attach(c cref) {
	ls := s.db.lits(c)
	if len(ls) == 2 {
		s.binWatches[ls[0].Not()] = append(s.binWatches[ls[0].Not()], binWatcher{imp: ls[1], c: c})
		s.binWatches[ls[1].Not()] = append(s.binWatches[ls[1].Not()], binWatcher{imp: ls[0], c: c})
		return
	}
	w0, w1 := ls[0].Not(), ls[1].Not()
	s.watches[w0] = append(s.watches[w0], watcher{c: c, blocker: ls[1]})
	s.watches[w1] = append(s.watches[w1], watcher{c: c, blocker: ls[0]})
}

func (s *Solver) uncheckedEnqueue(l Lit, from cref) {
	v := l.Var()
	s.assigns[v] = True.XorSign(l.Sign())
	s.levels[v] = int32(s.decisionLevel())
	s.reasons[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation and returns a conflicting clause, or
// crefUndef if no conflict was found. For each trail literal the binary
// implication list is scanned first (no clause-store access at all), then
// the watch lists of longer clauses with blocking-literal skips. Interrupt
// is polled every 2048 propagations so that portfolio cancellation and
// timeouts land within milliseconds even inside one long propagation pass;
// an early stop sets s.interrupted and leaves the remaining queue for the
// next call.
func (s *Solver) propagate() cref {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.stats.Propagations++
		if s.Interrupt != nil && s.stats.Propagations&2047 == 0 && s.Interrupt() {
			s.interrupted = true
			return crefUndef
		}
		// Binary implications: p became true, so each imp is forced.
		for _, bw := range s.binWatches[p] {
			switch s.value(bw.imp) {
			case False:
				s.qhead = len(s.trail)
				return bw.c
			case Undef:
				s.stats.BinPropagations++
				s.uncheckedEnqueue(bw.imp, bw.c)
			}
		}
		ws := s.watches[p]
		kept := ws[:0]
		n := len(ws)
	nextWatcher:
		for wi := 0; wi < n; wi++ {
			w := ws[wi]
			if s.value(w.blocker) == True {
				kept = append(kept, w)
				continue
			}
			c := w.c
			if s.db.isDeleted(c) {
				continue // dropped clause: let the watcher disappear
			}
			lits := s.db.lits(c)
			// Ensure the false literal is at position 1.
			notP := p.Not()
			if lits[0] == notP {
				lits[0], lits[1] = lits[1], lits[0]
			}
			first := lits[0]
			if first != w.blocker && s.value(first) == True {
				kept = append(kept, watcher{c: c, blocker: first})
				continue
			}
			// Look for a new literal to watch.
			for k := 2; k < len(lits); k++ {
				if s.value(lits[k]) != False {
					lits[1], lits[k] = lits[k], lits[1]
					wl := lits[1].Not()
					s.watches[wl] = append(s.watches[wl], watcher{c: c, blocker: first})
					continue nextWatcher
				}
			}
			// Clause is unit or conflicting.
			kept = append(kept, watcher{c: c, blocker: first})
			if s.value(first) == False {
				// Conflict: restore remaining watchers and bail.
				kept = append(kept, ws[wi+1:n]...)
				s.watches[p] = kept
				s.qhead = len(s.trail)
				return c
			}
			s.uncheckedEnqueue(first, c)
		}
		s.watches[p] = kept
	}
	return crefUndef
}

func (s *Solver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	bound := s.trailLim[level]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.assigns[v] = Undef
		s.polarity[v] = s.trail[i].Sign()
		s.reasons[v] = crefUndef
		if !s.order.contains(v) {
			s.order.insert(v)
		}
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *Solver) bumpVar(v Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.decreased(v)
}

// The 0.99 decay (vs MiniSat's 0.95) keeps the activity ordering stable
// across the much more frequent adaptive restarts: with glue-driven
// restarting the solver revisits the same prefix often, and a fast decay
// makes it re-derive the ordering from scratch each time.
func (s *Solver) decayVar() { s.varInc /= 0.99 }

func (s *Solver) bumpClause(c cref) {
	h := &s.db.hdr[c]
	h.act += s.claInc
	if h.act > 1e30 {
		for _, lc := range s.learnts {
			s.db.hdr[lc].act *= 1e-30
		}
		s.claInc *= 1e-30
	}
}

func (s *Solver) decayClause() { s.claInc /= 0.999 }

// analyze performs first-UIP conflict analysis. It returns the learnt clause
// literals (asserting literal first), the backtrack level, and — when
// tracing — the resolution chain of clause IDs.
func (s *Solver) analyze(confl cref) (learnt []Lit, btLevel int, chain []int32) {
	learnt = append(s.analyzeScratch[:0], LitUndef) // reserve slot 0
	seen := s.seen
	counter := 0
	p := LitUndef
	idx := len(s.trail) - 1

	for {
		if s.trace {
			chain = append(chain, s.db.id(confl))
		}
		// Skip the resolved literal by identity: binary reasons come from
		// the implication lists, where the implied literal is not
		// necessarily stored at position 0.
		cl := s.db.lits(confl)
		if s.db.isLearnt(confl) {
			s.bumpClause(confl)
			// Glucose's dynamic glue update: a clause used in analysis
			// refreshes its disuse stamp, and if its LBD has improved it is
			// promoted toward a safer tier.
			h := &s.db.hdr[confl]
			h.touch = int32(s.stats.Conflicts)
			if int(h.lbd) > coreLBD {
				if nl := s.computeLBD(cl); nl < int(h.lbd) {
					h.lbd = uint16(nl)
					if nt := tierForLBD(nl); nt > h.tier {
						s.nTier[h.tier]--
						s.nTier[nt]++
						h.tier = nt
					}
				}
			}
		}
		for _, q := range cl {
			if q == p {
				continue
			}
			v := q.Var()
			if seen[v] != 0 {
				continue
			}
			lv := int(s.levels[v])
			if lv == 0 {
				// Dropping a level-0 literal resolves against its
				// level-0 derivation; record a deferred marker.
				if s.trace {
					chain = append(chain, markLevelZero(v))
				}
				continue
			}
			seen[v] = 1
			s.bumpVar(v)
			if lv >= s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Select next literal to resolve on.
		for seen[s.trail[idx].Var()] == 0 {
			idx--
		}
		p = s.trail[idx]
		idx--
		confl = s.reasons[p.Var()]
		seen[p.Var()] = 0
		counter--
		if counter <= 0 {
			break
		}
	}
	learnt[0] = p.Not()

	// Conflict-clause minimization (self-subsumption with level-0 removal).
	learnt, chain = s.minimize(learnt, chain)

	// Compute backtrack level and move the second-highest literal to slot 1.
	if len(learnt) == 1 {
		btLevel = 0
	} else {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.levels[learnt[i].Var()] > s.levels[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = int(s.levels[learnt[1].Var()])
	}
	for _, l := range learnt {
		seen[l.Var()] = 0
	}
	s.analyzeScratch = learnt[:0]
	return learnt, btLevel, chain
}

// minimize removes literals from the learnt clause that are implied by the
// others via their reason clauses, extending the proof chain accordingly.
func (s *Solver) minimize(learnt []Lit, chain []int32) ([]Lit, []int32) {
	seen := s.seen
	for _, l := range learnt {
		seen[l.Var()] = 1
	}
	out := learnt[:1]
	for _, l := range learnt[1:] {
		r := s.reasons[l.Var()]
		if r == crefUndef {
			out = append(out, l)
			continue
		}
		redundant := true
		rl := s.db.lits(r)
		for _, q := range rl {
			if q == l.Not() {
				continue
			}
			if seen[q.Var()] != 0 {
				continue
			}
			if s.levels[q.Var()] == 0 {
				continue
			}
			redundant = false
			break
		}
		if redundant {
			if s.trace {
				chain = append(chain, s.db.id(r))
				for _, q := range rl {
					if q != l.Not() && seen[q.Var()] == 0 && s.levels[q.Var()] == 0 {
						chain = append(chain, markLevelZero(q.Var()))
					}
				}
			}
			seen[l.Var()] = 0 // removed: do not let later literals rely on it
			continue
		}
		out = append(out, l)
	}
	for _, l := range out {
		seen[l.Var()] = 0
	}
	return out, chain
}

// levelZeroChain records the derivation of a conflict at level 0: the
// conflicting clause plus deferred markers for its (level-0) literals.
func (s *Solver) levelZeroChain(confl cref) []int32 {
	chain := []int32{s.db.id(confl)}
	for _, q := range s.db.lits(confl) {
		chain = append(chain, markLevelZero(q.Var()))
	}
	return chain
}

// computeLBD counts the distinct non-zero decision levels among lits (the
// clause's glue). Levels survive backjumps untouched in s.levels, so calling
// this right after analyze — before or after cancelUntil — is equivalent.
func (s *Solver) computeLBD(lits []Lit) int {
	s.lbdGen++
	gen := s.lbdGen
	n := 0
	for _, l := range lits {
		lv := int(s.levels[l.Var()])
		if lv == 0 {
			continue
		}
		for lv >= len(s.lbdStamp) {
			s.lbdStamp = append(s.lbdStamp, 0)
		}
		if s.lbdStamp[lv] != gen {
			s.lbdStamp[lv] = gen
			n++
		}
	}
	return n
}

func (s *Solver) recordLearnt(lits []Lit, chain []int32) (cref, int) {
	id := int32(-1)
	if s.trace {
		id = s.proof.addLearnt(chain)
	}
	lbd := s.computeLBD(lits)
	c := s.db.alloc(lits, true, id)
	h := &s.db.hdr[c]
	if lbd > int(^uint16(0)) {
		h.lbd = ^uint16(0)
	} else {
		h.lbd = uint16(lbd)
	}
	h.tier = tierForLBD(lbd)
	h.touch = int32(s.stats.Conflicts)
	s.stats.LearntsAdded++
	s.stats.LBDSum += int64(lbd)
	if len(lits) >= 2 {
		s.nTier[h.tier]++
		s.learnts = append(s.learnts, c)
		s.attach(c)
		s.bumpClause(c)
	}
	if s.Export != nil {
		maxLits, maxLBD := shareMaxLits, shareLBD
		if s.ShareMaxLits > 0 {
			maxLits = s.ShareMaxLits
		}
		if s.ShareLBD > 0 {
			maxLBD = s.ShareLBD
		}
		if len(lits) <= maxLits && (lbd <= maxLBD || len(lits) <= 2) {
			s.stats.ExportedClauses++
			s.Export(lits, lbd)
		}
	}
	return c, lbd
}

// doImport polls the Import hook at decision level 0 and propagates the
// consequences of whatever was incorporated. Importing is skipped under
// proof tracing (a foreign clause has no derivation in the proof log). A
// level-0 conflict after import marks the database UNSAT.
func (s *Solver) doImport() {
	if s.Import == nil || s.trace || !s.ok {
		return
	}
	s.Import(s.importLearnt)
	if s.ok && s.qhead < len(s.trail) {
		if confl := s.propagate(); confl != crefUndef {
			s.ok = false
		}
	}
}

// importLearnt incorporates one foreign clause at decision level 0. It
// mirrors AddClauseTagged's normalization (sort, dedup, tautology check,
// level-0 strengthening) but allocates the clause as a learnt with the
// carried glue, so the three-tier reduction manages imported clauses like
// home-grown ones. Clauses referencing unknown or eliminated variables are
// dropped — never a panic: a peer's canonical coding may legitimately reach
// further than this solver's formula. Returns whether the clause was
// incorporated.
func (s *Solver) importLearnt(lits []Lit, lbd int) bool {
	if !s.ok || s.trace || s.decisionLevel() != 0 {
		return false
	}
	tmp := append(s.addTmp[:0], lits...)
	sortLits(tmp)
	out := tmp[:0]
	prev := LitUndef
	for _, l := range tmp {
		if int(l.Var()) >= len(s.assigns) || s.elimed[l.Var()] {
			s.addTmp = tmp
			return false
		}
		if l == prev {
			continue
		}
		if prev != LitUndef && l == prev.Not() {
			s.addTmp = tmp
			return false // tautology: nothing to learn
		}
		if s.value(l) == True {
			s.addTmp = tmp
			return false // already satisfied at level 0
		}
		if s.value(l) == False {
			continue // strengthen away literals false at level 0
		}
		out = append(out, l)
		prev = l
	}
	if len(out) == 0 {
		// Every literal is false at level 0: the (sound) clause is empty
		// here, so the database is UNSAT.
		s.addTmp = tmp
		s.ok = false
		s.stats.ImportedClauses++
		return true
	}
	c := s.db.alloc(out, true, -1)
	s.addTmp = tmp
	if len(out) == 1 {
		s.uncheckedEnqueue(s.db.lits(c)[0], c)
		s.stats.ImportedClauses++
		return true
	}
	if lbd < 1 {
		lbd = 1
	}
	if lbd > len(out) {
		lbd = len(out)
	}
	h := &s.db.hdr[c]
	h.lbd = uint16(lbd)
	h.tier = tierForLBD(lbd)
	h.touch = int32(s.stats.Conflicts)
	s.nTier[h.tier]++
	s.learnts = append(s.learnts, c)
	s.attach(c)
	s.stats.ImportedClauses++
	return true
}

// locked reports whether c is the reason of its first (implied) literal and
// therefore must not be deleted while that assignment stands.
func (s *Solver) locked(c cref) bool {
	l := s.db.lits(c)[0]
	return s.value(l) == True && s.reasons[l.Var()] == c
}

// reduceDB is the three-tier learnt-database reduction. Core clauses
// (glue <= 2) are never touched; mid-tier clauses survive but are demoted
// to the local pool after midAgeLimit conflicts without being used in
// conflict analysis; the local pool is sorted by activity and its weakest
// half deleted. Binary learnts (glue <= 2 by construction, and high
// propagation value at 8 bytes of watch cost) and clauses that are the
// reason of a standing assignment are never deleted. When enough of the
// arena is garbage, the literal blocks are compacted in place.
func (s *Solver) reduceDB() {
	if len(s.learnts) < 2 {
		return
	}
	s.stats.ReduceDBs++
	db := &s.db
	now := int32(s.stats.Conflicts)
	var local []cref
	for _, c := range s.learnts {
		h := &db.hdr[c]
		if h.flags&flagDel != 0 {
			continue
		}
		if h.tier == tierMid && now-h.touch > midAgeLimit {
			h.tier = tierLocal
		}
		if h.tier == tierLocal {
			local = append(local, c)
		}
	}
	sort.Slice(local, func(i, j int) bool { return db.hdr[local[i]].act < db.hdr[local[j]].act })
	half := len(local) / 2
	for i, c := range local {
		if i >= half {
			break
		}
		if db.size(c) > 2 && !s.locked(c) {
			db.markDeleted(c) // watchers lazily dropped in propagate
			s.stats.LearntsDeleted++
		}
	}
	// Rebuild the live list and recount the tiers (the recount also absorbs
	// any drift from clauses attached outside recordLearnt, e.g. in tests).
	keep := s.learnts[:0]
	s.nTier = [3]int{}
	for _, c := range s.learnts {
		if db.isDeleted(c) {
			continue
		}
		keep = append(keep, c)
		s.nTier[db.hdr[c].tier]++
	}
	s.learnts = keep
	if db.shouldCompact() {
		db.compact()
	}
}

func (s *Solver) pickBranchVar() Var {
	for !s.order.empty() {
		v := s.order.removeMin()
		if s.assigns[v] == Undef && s.decider[v] && !s.elimed[v] {
			return v
		}
	}
	return VarUndef
}

// Solve searches for a satisfying assignment under the given assumptions.
func (s *Solver) Solve(assumps ...Lit) Status {
	if s.obsAttached {
		s.obsSolves.Inc()
		defer s.PublishObs()
	}
	s.model = nil
	s.conflictAssum = nil
	s.finalChain = nil
	for _, a := range assumps {
		if s.elimed[a.Var()] {
			panic("sat: assumption references eliminated variable (missing Freeze before Simplify)")
		}
	}
	if !s.ok {
		if s.trace {
			s.finalChain = s.rootCause
		}
		return Unsat
	}
	s.cancelUntil(0)
	s.interrupted = false
	if confl := s.propagate(); confl != crefUndef {
		s.ok = false
		if s.trace {
			s.rootCause = s.levelZeroChain(confl)
			s.finalChain = s.rootCause
		}
		return Unsat
	}
	if s.interrupted {
		s.interrupted = false
		return Unknown
	}
	// Pick up peer lemmas before searching: short incremental solves may
	// finish without ever restarting, so the entry point is a poll site too.
	s.doImport()
	if !s.ok {
		return Unsat
	}
	if s.interrupted {
		s.interrupted = false
		return Unknown
	}

	var conflicts int64
	useLuby := s.Restart == RestartLuby
	restartN := 0
	limit := int64(luby(2, restartN) * 100)
	sinceRestart := int64(0)

	for {
		// Poll the interrupt hook on a bounded stride of search-loop
		// iterations (decisions and conflicts alike), not only once per 64
		// conflicts: a solver stuck in a long decision streak must still
		// notice cancellation promptly.
		s.pollTick++
		if s.Interrupt != nil && s.pollTick&127 == 0 && s.Interrupt() {
			s.cancelUntil(0)
			return Unknown
		}
		confl := s.propagate()
		if s.interrupted {
			s.interrupted = false
			s.cancelUntil(0)
			return Unknown
		}
		if confl != crefUndef {
			conflicts++
			sinceRestart++
			s.stats.Conflicts++
			if s.decisionLevel() == 0 {
				s.ok = false
				if s.trace {
					s.rootCause = s.levelZeroChain(confl)
					s.finalChain = s.rootCause
				}
				s.cancelUntil(0)
				return Unsat
			}
			learnt, btLevel, chain := s.analyze(confl)
			trailAtConflict := len(s.trail)
			// Do not backtrack past the assumptions unless forced to.
			s.cancelUntil(btLevel)
			c, lbd := s.recordLearnt(learnt, chain)
			if !useLuby {
				if s.ema.update(lbd, trailAtConflict, sinceRestart >= emaMinConflicts) {
					s.stats.RestartsBlocked++
				}
			}
			if s.value(learnt[0]) != Undef {
				panic("sat: asserting literal assigned after backjump")
			}
			s.uncheckedEnqueue(learnt[0], c)
			s.decayVar()
			s.decayClause()
			if s.ConflictBudget > 0 && conflicts > s.ConflictBudget {
				s.cancelUntil(0)
				return Unknown
			}
			continue
		}

		if useLuby {
			if sinceRestart >= limit {
				// Restart, keeping assumptions intact by replaying them below.
				restartN++
				s.stats.Restarts++
				s.stats.RestartsLuby++
				limit = int64(luby(2, restartN) * 100)
				sinceRestart = 0
				s.cancelUntil(0)
				s.doImport()
			}
		} else if sinceRestart >= emaMinConflicts && s.ema.shouldRestart() {
			s.stats.Restarts++
			s.stats.RestartsEMA++
			s.ema.onRestart()
			sinceRestart = 0
			s.cancelUntil(0)
			s.doImport()
		}
		if !s.ok {
			// An imported clause closed the search at level 0.
			s.cancelUntil(0)
			return Unsat
		}
		if s.interrupted {
			s.interrupted = false
			s.cancelUntil(0)
			return Unknown
		}
		if s.nTier[tierLocal] > s.localMax {
			s.reduceDB()
			s.localMax += s.localMax / 10
		}

		// Re-establish assumptions as the first decisions.
		if s.decisionLevel() < len(assumps) {
			a := assumps[s.decisionLevel()]
			switch s.value(a) {
			case True:
				s.trailLim = append(s.trailLim, len(s.trail)) // dummy level
			case False:
				s.analyzeFinal(a)
				s.cancelUntil(0)
				return Unsat
			default:
				s.stats.Decisions++
				s.trailLim = append(s.trailLim, len(s.trail))
				s.uncheckedEnqueue(a, crefUndef)
			}
			continue
		}

		v := s.pickBranchVar()
		if v == VarUndef {
			// Model found. Extend it over eliminated variables so that
			// witness decoding can read any CNF variable.
			s.model = append([]LBool(nil), s.assigns...)
			s.extendModel()
			s.cancelUntil(0)
			return Sat
		}
		s.stats.Decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(MkLit(v, s.polarity[v]), crefUndef)
	}
}

// analyzeFinal computes the failed-assumption set and clause chain for an
// assumption literal a that is false under the current (assumption-level)
// assignment.
func (s *Solver) analyzeFinal(a Lit) {
	s.conflictAssum = []Lit{a}
	if r := s.reasons[a.Var()]; r != crefUndef {
		s.analyzeFinalLit(a, r)
		return
	}
	// a was directly contradicted by an earlier assumption decision.
	s.conflictAssum = append(s.conflictAssum, a.Not())
	s.finalChain = nil
}

// analyzeFinalLit walks implications backward from a conflicting implied
// literal, separating assumption decisions (reported in conflictAssum) from
// clauses (reported, when tracing, in finalChain).
func (s *Solver) analyzeFinalLit(a Lit, r cref) {
	s.conflictAssum = []Lit{a}
	var chain []int32
	seen := s.seen
	seen[a.Var()] = 1
	stack := []cref{r}
	var vars []Var
	vars = append(vars, a.Var())
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s.trace {
			chain = append(chain, s.db.id(c))
		}
		for _, q := range s.db.lits(c) {
			v := q.Var()
			if seen[v] != 0 {
				continue
			}
			if s.value(q) != False {
				continue
			}
			seen[v] = 1
			vars = append(vars, v)
			if rr := s.reasons[v]; rr != crefUndef {
				stack = append(stack, rr)
			} else if s.levels[v] > 0 {
				// Assumption decision.
				s.conflictAssum = append(s.conflictAssum, q.Not())
			}
		}
	}
	for _, v := range vars {
		seen[v] = 0
	}
	s.finalChain = chain
}

// Okay reports whether the clause database is still (possibly) satisfiable.
func (s *Solver) Okay() bool { return s.ok }
