package sat

// Solver is an incremental CDCL SAT solver. The zero value is not usable;
// construct with New.
//
// Typical use:
//
//	s := sat.New()
//	v := s.NewVar()
//	s.AddClause(sat.PosLit(v))
//	if s.Solve() == sat.Sat { _ = s.Value(v) }
//
// Clauses may be added between Solve calls. Solve accepts assumption
// literals; after an Unsat answer under assumptions, FailedAssumptions
// reports a subset of assumptions sufficient for unsatisfiability, and (when
// proof tracing is enabled) Core reports provenance tags of a sufficient
// subset of original clauses.
type Solver struct {
	ok bool // false once the clause database is UNSAT at level 0

	clauses []*clause // original problem clauses
	learnts []*clause

	watches  [][]watcher // literal -> watch list
	assigns  []LBool     // variable assignment
	levels   []int32     // decision level of each assigned variable
	reasons  []*clause   // antecedent clause of each implied variable
	polarity []bool      // saved phase per variable
	decider  []bool      // whether the variable may be picked as a decision

	trail    []Lit
	trailLim []int
	qhead    int

	order    *varOrder
	activity []float64
	varInc   float64
	claInc   float32

	seen           []byte
	analyzeScratch []Lit

	model         []LBool
	conflictAssum []Lit // failed assumptions from the last Unsat answer

	// Proof tracing.
	trace      bool
	proof      proofStore
	finalChain []int32 // antecedents of the final (empty) conflict
	rootCause  []int32 // chain when AddClause itself hit UNSAT

	// Budgets.
	ConflictBudget int64       // ≤0 means unlimited
	Interrupt      func() bool // polled at a bounded stride; returning true aborts Solve with Unknown

	interrupted bool   // propagate observed Interrupt firing mid-queue
	pollTick    uint32 // search-loop iterations since the last Interrupt poll

	stats Stats
}

// Stats holds cumulative search statistics.
type Stats struct {
	Decisions    int64
	Propagations int64
	Conflicts    int64
	Restarts     int64
	LearntsAdded int64
	MaxVar       int
}

// New constructs an empty solver.
func New() *Solver {
	return &Solver{
		ok:     true,
		varInc: 1.0,
		claInc: 1.0,
	}
}

// EnableProofTracing turns on resolution-chain recording. It must be called
// before any clause is added.
func (s *Solver) EnableProofTracing() {
	if len(s.clauses) > 0 || len(s.trail) > 0 {
		panic("sat: EnableProofTracing must be called before adding clauses")
	}
	s.trace = true
}

// Tracing reports whether proof tracing is enabled.
func (s *Solver) Tracing() bool { return s.trace }

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return len(s.assigns) }

// NumClauses returns the number of original clauses currently attached.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// ClauseAt returns a copy of the i-th stored original clause (literal
// order is internal and may differ from the order given to AddClause).
func (s *Solver) ClauseAt(i int) []Lit {
	return append([]Lit(nil), s.clauses[i].lits...)
}

// NumLearnts returns the number of learnt clauses currently attached.
func (s *Solver) NumLearnts() int { return len(s.learnts) }

// Stats returns cumulative statistics.
func (s *Solver) Stats() Stats { return s.stats }

// NewVar allocates a fresh variable.
func (s *Solver) NewVar() Var {
	v := Var(len(s.assigns))
	s.assigns = append(s.assigns, Undef)
	s.levels = append(s.levels, 0)
	s.reasons = append(s.reasons, nil)
	s.polarity = append(s.polarity, true) // default phase: false
	s.decider = append(s.decider, true)
	s.activity = append(s.activity, 0)
	s.watches = append(s.watches, nil, nil)
	s.seen = append(s.seen, 0)
	if s.order == nil {
		s.order = newVarOrder(&s.activity)
	}
	s.order.insert(v)
	s.stats.MaxVar = len(s.assigns)
	return v
}

// SetDecidable controls whether v may be chosen as a decision variable.
// Non-decidable variables can still be assigned by propagation.
func (s *Solver) SetDecidable(v Var, d bool) { s.decider[v] = d }

// Value returns the value of v in the most recent satisfying model.
func (s *Solver) Value(v Var) LBool {
	if int(v) >= len(s.model) {
		return Undef
	}
	return s.model[v]
}

// LitValue returns the model value of literal l.
func (s *Solver) LitValue(l Lit) LBool { return s.Value(l.Var()).XorSign(l.Sign()) }

// FailedAssumptions returns the subset of the last Solve's assumptions that
// was used to derive Unsat. Valid only immediately after an Unsat answer.
func (s *Solver) FailedAssumptions() []Lit { return s.conflictAssum }

// value is the current (search-time) value of a literal.
func (s *Solver) value(l Lit) LBool { return s.assigns[l.Var()].XorSign(l.Sign()) }

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// AddClause adds an untagged clause. It returns false if the clause database
// has become unsatisfiable at level 0.
func (s *Solver) AddClause(lits ...Lit) bool { return s.AddClauseTagged(-1, lits) }

// AddClauseTagged adds a clause carrying a provenance tag used by Core.
// It returns false if the clause database has become unsatisfiable.
func (s *Solver) AddClauseTagged(tag int64, lits []Lit) bool {
	if !s.ok {
		return false
	}
	if s.decisionLevel() != 0 {
		s.cancelUntil(0)
	}
	// Normalize: sort, drop duplicates, detect tautologies.
	tmp := append([]Lit(nil), lits...)
	sortLits(tmp)
	out := tmp[:0]
	var prev Lit = LitUndef
	for _, l := range tmp {
		if int(l.Var()) >= len(s.assigns) {
			panic("sat: literal references unallocated variable")
		}
		if l == prev {
			continue
		}
		if prev != LitUndef && l == prev.Not() {
			return true // tautology
		}
		if !s.trace {
			// Without tracing we may freely strengthen at level 0.
			if s.value(l) == True {
				return true
			}
			if s.value(l) == False {
				continue
			}
		} else if s.value(l) == True && s.levels[l.Var()] == 0 {
			return true // satisfied at level 0: redundant, safe to drop
		}
		out = append(out, l)
		prev = l
	}

	c := &clause{lits: append([]Lit(nil), out...), id: -1}
	if s.trace {
		c.id = s.proof.addOriginal(tag)
	}

	// Count non-false literals and move them to the front for watching.
	nonFalse := 0
	for i, l := range c.lits {
		if s.value(l) != False {
			c.lits[i], c.lits[nonFalse] = c.lits[nonFalse], c.lits[i]
			nonFalse++
		}
	}
	switch {
	case nonFalse == 0:
		// Conflict at level 0: the database is UNSAT.
		s.ok = false
		if s.trace {
			s.rootCause = s.levelZeroChain(c)
		}
		if len(c.lits) > 0 {
			s.clauses = append(s.clauses, c)
		}
		return false
	case nonFalse == 1:
		// Effectively a unit clause.
		s.clauses = append(s.clauses, c)
		s.uncheckedEnqueue(c.lits[0], c)
		if confl := s.propagate(); confl != nil {
			s.ok = false
			if s.trace {
				s.rootCause = s.levelZeroChain(confl)
			}
			return false
		}
		return true
	default:
		s.clauses = append(s.clauses, c)
		s.attach(c)
		return true
	}
}

func sortLits(lits []Lit) {
	// Insertion sort: clause literal lists are short.
	for i := 1; i < len(lits); i++ {
		l := lits[i]
		j := i - 1
		for j >= 0 && lits[j] > l {
			lits[j+1] = lits[j]
			j--
		}
		lits[j+1] = l
	}
}

func (s *Solver) attach(c *clause) {
	w0, w1 := c.lits[0].Not(), c.lits[1].Not()
	s.watches[w0] = append(s.watches[w0], watcher{c: c, blocker: c.lits[1]})
	s.watches[w1] = append(s.watches[w1], watcher{c: c, blocker: c.lits[0]})
}

func (s *Solver) uncheckedEnqueue(l Lit, from *clause) {
	v := l.Var()
	s.assigns[v] = True.XorSign(l.Sign())
	s.levels[v] = int32(s.decisionLevel())
	s.reasons[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation over the watch lists and returns a
// conflicting clause, or nil if no conflict was found. Interrupt is polled
// every 2048 propagations so that portfolio cancellation and timeouts land
// within milliseconds even inside one long propagation pass; an early stop
// sets s.interrupted and leaves the remaining queue for the next call.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.stats.Propagations++
		if s.Interrupt != nil && s.stats.Propagations&2047 == 0 && s.Interrupt() {
			s.interrupted = true
			return nil
		}
		ws := s.watches[p]
		kept := ws[:0]
		n := len(ws)
	nextWatcher:
		for wi := 0; wi < n; wi++ {
			w := ws[wi]
			if s.value(w.blocker) == True {
				kept = append(kept, w)
				continue
			}
			c := w.c
			if c.del {
				continue // dropped clause: let the watcher disappear
			}
			// Ensure the false literal is at position 1.
			notP := p.Not()
			if c.lits[0] == notP {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.value(first) == True {
				kept = append(kept, watcher{c: c, blocker: first})
				continue
			}
			// Look for a new literal to watch.
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != False {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					wl := c.lits[1].Not()
					s.watches[wl] = append(s.watches[wl], watcher{c: c, blocker: first})
					continue nextWatcher
				}
			}
			// Clause is unit or conflicting.
			kept = append(kept, watcher{c: c, blocker: first})
			if s.value(first) == False {
				// Conflict: restore remaining watchers and bail.
				kept = append(kept, ws[wi+1:n]...)
				s.watches[p] = kept
				s.qhead = len(s.trail)
				return c
			}
			s.uncheckedEnqueue(first, c)
		}
		s.watches[p] = kept
	}
	return nil
}

func (s *Solver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	bound := s.trailLim[level]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		s.assigns[v] = Undef
		s.polarity[v] = s.trail[i].Sign()
		s.reasons[v] = nil
		if !s.order.contains(v) {
			s.order.insert(v)
		}
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *Solver) bumpVar(v Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.decreased(v)
}

func (s *Solver) decayVar() { s.varInc /= 0.95 }

func (s *Solver) bumpClause(c *clause) {
	c.act += s.claInc
	if c.act > 1e30 {
		for _, lc := range s.learnts {
			lc.act *= 1e-30
		}
		s.claInc *= 1e-30
	}
}

func (s *Solver) decayClause() { s.claInc /= 0.999 }

// analyze performs first-UIP conflict analysis. It returns the learnt clause
// literals (asserting literal first), the backtrack level, and — when
// tracing — the resolution chain of clause IDs.
func (s *Solver) analyze(confl *clause) (learnt []Lit, btLevel int, chain []int32) {
	learnt = append(s.analyzeScratch[:0], LitUndef) // reserve slot 0
	seen := s.seen
	counter := 0
	p := LitUndef
	idx := len(s.trail) - 1

	for {
		if s.trace {
			chain = append(chain, confl.id)
		}
		if confl.learnt {
			s.bumpClause(confl)
		}
		start := 0
		if p != LitUndef {
			start = 1 // skip the resolved literal confl.lits[0]
		}
		for _, q := range confl.lits[start:] {
			if p != LitUndef && q == p {
				continue
			}
			v := q.Var()
			if seen[v] != 0 {
				continue
			}
			lv := int(s.levels[v])
			if lv == 0 {
				// Dropping a level-0 literal resolves against its
				// level-0 derivation; record a deferred marker.
				if s.trace {
					chain = append(chain, markLevelZero(v))
				}
				continue
			}
			seen[v] = 1
			s.bumpVar(v)
			if lv >= s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Select next literal to resolve on.
		for seen[s.trail[idx].Var()] == 0 {
			idx--
		}
		p = s.trail[idx]
		idx--
		confl = s.reasons[p.Var()]
		seen[p.Var()] = 0
		counter--
		if counter <= 0 {
			break
		}
	}
	learnt[0] = p.Not()

	// Conflict-clause minimization (self-subsumption with level-0 removal).
	learnt, chain = s.minimize(learnt, chain)

	// Compute backtrack level and move the second-highest literal to slot 1.
	if len(learnt) == 1 {
		btLevel = 0
	} else {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.levels[learnt[i].Var()] > s.levels[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = int(s.levels[learnt[1].Var()])
	}
	for _, l := range learnt {
		seen[l.Var()] = 0
	}
	s.analyzeScratch = learnt[:0]
	return append([]Lit(nil), learnt...), btLevel, chain
}

// minimize removes literals from the learnt clause that are implied by the
// others via their reason clauses, extending the proof chain accordingly.
func (s *Solver) minimize(learnt []Lit, chain []int32) ([]Lit, []int32) {
	seen := s.seen
	for _, l := range learnt {
		seen[l.Var()] = 1
	}
	out := learnt[:1]
	for _, l := range learnt[1:] {
		r := s.reasons[l.Var()]
		if r == nil {
			out = append(out, l)
			continue
		}
		redundant := true
		for _, q := range r.lits {
			if q == l.Not() {
				continue
			}
			if seen[q.Var()] != 0 {
				continue
			}
			if s.levels[q.Var()] == 0 {
				continue
			}
			redundant = false
			break
		}
		if redundant {
			if s.trace {
				chain = append(chain, r.id)
				for _, q := range r.lits {
					if q != l.Not() && seen[q.Var()] == 0 && s.levels[q.Var()] == 0 {
						chain = append(chain, markLevelZero(q.Var()))
					}
				}
			}
			seen[l.Var()] = 0 // removed: do not let later literals rely on it
			continue
		}
		out = append(out, l)
	}
	for _, l := range out {
		seen[l.Var()] = 0
	}
	return out, chain
}

// levelZeroChain records the derivation of a conflict at level 0: the
// conflicting clause plus deferred markers for its (level-0) literals.
func (s *Solver) levelZeroChain(confl *clause) []int32 {
	chain := []int32{confl.id}
	for _, q := range confl.lits {
		chain = append(chain, markLevelZero(q.Var()))
	}
	return chain
}

func (s *Solver) recordLearnt(lits []Lit, chain []int32) *clause {
	c := &clause{lits: lits, learnt: true, id: -1}
	if s.trace {
		c.id = s.proof.addLearnt(chain)
	}
	s.stats.LearntsAdded++
	if len(lits) >= 2 {
		s.learnts = append(s.learnts, c)
		s.attach(c)
		s.bumpClause(c)
	}
	return c
}

// reduceDB removes roughly half of the learnt clauses, preferring clauses
// with low activity, while keeping clauses that are reasons on the trail.
func (s *Solver) reduceDB() {
	if len(s.learnts) < 2 {
		return
	}
	// Partial sort by activity: simple threshold at median via nth element
	// approximation (full sort is fine at our scale).
	ls := s.learnts
	sortClausesByAct(ls)
	keep := ls[:0]
	locked := func(c *clause) bool {
		l := c.lits[0]
		return s.value(l) == True && s.reasons[l.Var()] == c
	}
	half := len(ls) / 2
	for i, c := range ls {
		if i < half && len(c.lits) > 2 && !locked(c) {
			c.del = true // watchers lazily dropped in propagate
			continue
		}
		keep = append(keep, c)
	}
	s.learnts = keep
}

func sortClausesByAct(cs []*clause) {
	// Ascending activity; shell sort to avoid importing sort for a hot path.
	n := len(cs)
	for gap := n / 2; gap > 0; gap /= 2 {
		for i := gap; i < n; i++ {
			c := cs[i]
			j := i
			for ; j >= gap && cs[j-gap].act > c.act; j -= gap {
				cs[j] = cs[j-gap]
			}
			cs[j] = c
		}
	}
}

func (s *Solver) pickBranchVar() Var {
	for !s.order.empty() {
		v := s.order.removeMin()
		if s.assigns[v] == Undef && s.decider[v] {
			return v
		}
	}
	return VarUndef
}

// Solve searches for a satisfying assignment under the given assumptions.
func (s *Solver) Solve(assumps ...Lit) Status {
	s.model = nil
	s.conflictAssum = nil
	s.finalChain = nil
	if !s.ok {
		if s.trace {
			s.finalChain = s.rootCause
		}
		return Unsat
	}
	s.cancelUntil(0)
	s.interrupted = false
	if confl := s.propagate(); confl != nil {
		s.ok = false
		if s.trace {
			s.rootCause = s.levelZeroChain(confl)
			s.finalChain = s.rootCause
		}
		return Unsat
	}
	if s.interrupted {
		s.interrupted = false
		return Unknown
	}

	var conflicts int64
	restartN := 0
	limit := int64(luby(2, restartN) * 100)
	sinceRestart := int64(0)
	maxLearnts := int64(len(s.clauses)/3 + 1000)

	for {
		// Poll the interrupt hook on a bounded stride of search-loop
		// iterations (decisions and conflicts alike), not only once per 64
		// conflicts: a solver stuck in a long decision streak must still
		// notice cancellation promptly.
		s.pollTick++
		if s.Interrupt != nil && s.pollTick&127 == 0 && s.Interrupt() {
			s.cancelUntil(0)
			return Unknown
		}
		confl := s.propagate()
		if s.interrupted {
			s.interrupted = false
			s.cancelUntil(0)
			return Unknown
		}
		if confl != nil {
			conflicts++
			sinceRestart++
			s.stats.Conflicts++
			if s.decisionLevel() == 0 {
				s.ok = false
				if s.trace {
					s.rootCause = s.levelZeroChain(confl)
					s.finalChain = s.rootCause
				}
				s.cancelUntil(0)
				return Unsat
			}
			learnt, btLevel, chain := s.analyze(confl)
			// Do not backtrack past the assumptions unless forced to.
			s.cancelUntil(btLevel)
			c := s.recordLearnt(learnt, chain)
			if s.value(learnt[0]) != Undef {
				panic("sat: asserting literal assigned after backjump")
			}
			s.uncheckedEnqueue(learnt[0], c)
			s.decayVar()
			s.decayClause()
			if s.ConflictBudget > 0 && conflicts > s.ConflictBudget {
				s.cancelUntil(0)
				return Unknown
			}
			continue
		}

		if sinceRestart >= limit {
			// Restart, keeping assumptions intact by replaying them below.
			restartN++
			s.stats.Restarts++
			limit = int64(luby(2, restartN) * 100)
			sinceRestart = 0
			s.cancelUntil(0)
		}
		if int64(len(s.learnts)) > maxLearnts {
			s.reduceDB()
			maxLearnts += maxLearnts / 10
		}

		// Re-establish assumptions as the first decisions.
		if s.decisionLevel() < len(assumps) {
			a := assumps[s.decisionLevel()]
			switch s.value(a) {
			case True:
				s.trailLim = append(s.trailLim, len(s.trail)) // dummy level
			case False:
				s.analyzeFinal(a)
				s.cancelUntil(0)
				return Unsat
			default:
				s.stats.Decisions++
				s.trailLim = append(s.trailLim, len(s.trail))
				s.uncheckedEnqueue(a, nil)
			}
			continue
		}

		v := s.pickBranchVar()
		if v == VarUndef {
			// Model found.
			s.model = append([]LBool(nil), s.assigns...)
			s.cancelUntil(0)
			return Sat
		}
		s.stats.Decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(MkLit(v, s.polarity[v]), nil)
	}
}

// analyzeFinal computes the failed-assumption set and clause chain for an
// assumption literal a that is false under the current (assumption-level)
// assignment.
func (s *Solver) analyzeFinal(a Lit) {
	s.conflictAssum = []Lit{a}
	if r := s.reasons[a.Var()]; r != nil {
		s.analyzeFinalLit(a, r)
		return
	}
	// a was directly contradicted by an earlier assumption decision.
	s.conflictAssum = append(s.conflictAssum, a.Not())
	s.finalChain = nil
}

// analyzeFinalLit walks implications backward from a conflicting implied
// literal, separating assumption decisions (reported in conflictAssum) from
// clauses (reported, when tracing, in finalChain).
func (s *Solver) analyzeFinalLit(a Lit, r *clause) {
	s.conflictAssum = []Lit{a}
	var chain []int32
	seen := s.seen
	seen[a.Var()] = 1
	stack := []*clause{r}
	var vars []Var
	vars = append(vars, a.Var())
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s.trace {
			chain = append(chain, c.id)
		}
		for _, q := range c.lits {
			v := q.Var()
			if seen[v] != 0 {
				continue
			}
			if s.value(q) != False {
				continue
			}
			seen[v] = 1
			vars = append(vars, v)
			if rr := s.reasons[v]; rr != nil {
				stack = append(stack, rr)
			} else if s.levels[v] > 0 {
				// Assumption decision.
				s.conflictAssum = append(s.conflictAssum, q.Not())
			}
		}
	}
	for _, v := range vars {
		seen[v] = 0
	}
	s.finalChain = chain
}

// Okay reports whether the clause database is still (possibly) satisfiable.
func (s *Solver) Okay() bool { return s.ok }
