package sat

import "fmt"

// RestartMode selects the restart strategy used by Solve.
type RestartMode uint8

// Restart strategies. The zero value is the default.
const (
	// RestartEMA is glucose-style adaptive restarting: restart when the
	// short-horizon average LBD of recent conflicts exceeds the long-run
	// average by emaMargin, postponing ("blocking") when the trail is much
	// deeper than usual — a sign the search is closing in on a model.
	RestartEMA RestartMode = iota
	// RestartLuby is the classic Luby-sequence schedule (unit 100
	// conflicts), the solver's pre-inprocessing behavior.
	RestartLuby
)

// String names the mode ("ema" or "luby").
func (m RestartMode) String() string {
	if m == RestartLuby {
		return "luby"
	}
	return "ema"
}

// ParseRestartMode parses the CLI spelling of a restart mode.
func ParseRestartMode(s string) (RestartMode, error) {
	switch s {
	case "ema":
		return RestartEMA, nil
	case "luby":
		return RestartLuby, nil
	}
	return RestartEMA, fmt.Errorf("sat: unknown restart mode %q (want luby or ema)", s)
}

// EMA restart tuning.
const (
	emaMargin       = 1.25 // restart when recent glue > margin * long-run glue
	emaBlockFactor  = 1.4  // block when the trail is this much deeper than usual
	emaMinConflicts = 50   // conflicts that must separate two restarts
	emaFastHorizon  = 32   // recent-glue EMA horizon (≈ glucose's 50-window)
	emaTrailHorizon = 4096 // trail-depth EMA horizon
)

// emaState carries the adaptive-restart averages. The long-run reference is
// the exact arithmetic mean of every conflict's LBD (glucose's "global
// average"), which self-corrects quickly after warm-up; the recent signal is
// an EMA reset to the mean at every restart, standing in for glucose's
// bounded queue.
type emaState struct {
	fast     float64 // recent-glue EMA
	trailEMA float64 // typical trail depth at conflict time
	glueSum  int64
	glueCnt  int64
}

func (e *emaState) mean() float64 {
	if e.glueCnt == 0 {
		return 0
	}
	return float64(e.glueSum) / float64(e.glueCnt)
}

// update folds one conflict into the averages. When canBlock is set (enough
// conflicts since the last restart) and the search is both glue-hot and
// unusually deep, the pending restart is postponed by resetting the recent
// EMA; update reports whether that happened so the caller can count it.
func (e *emaState) update(lbd, trail int, canBlock bool) (blocked bool) {
	e.glueSum += int64(lbd)
	e.glueCnt++
	f, t := float64(lbd), float64(trail)
	if e.glueCnt == 1 {
		e.fast, e.trailEMA = f, t
		return false
	}
	e.fast += (f - e.fast) / emaFastHorizon
	e.trailEMA += (t - e.trailEMA) / emaTrailHorizon
	if canBlock && e.fast > emaMargin*e.mean() && t > emaBlockFactor*e.trailEMA {
		e.fast = e.mean()
		return true
	}
	return false
}

// shouldRestart reports whether the recent glue trend warrants a restart.
func (e *emaState) shouldRestart() bool {
	return e.glueCnt > 1 && e.fast > emaMargin*e.mean()
}

// onRestart resets the recent window (glucose clears its queue).
func (e *emaState) onRestart() { e.fast = e.mean() }
