package sat

// watcher is an entry in a literal's watch list for clauses of three or
// more literals. blocker is a literal of the clause that, when already
// true, lets propagation skip visiting the clause entirely. The entry is 8
// bytes (cref + Lit), so a watch list is a dense, pointer-free array.
type watcher struct {
	c       cref
	blocker Lit
}

// binWatcher is an entry in a literal's binary implication list: when the
// watched literal becomes true, imp must be true (the clause is ¬watched ∨
// imp). Binary clauses never need watch repair, so propagation over them is
// a straight scan of this list with no clause visit at all; c is kept only
// as the reason/proof reference.
type binWatcher struct {
	imp Lit
	c   cref
}

// varOrder is a max-heap over variable activities used for VSIDS decisions.
type varOrder struct {
	heap     []Var // binary heap of variables
	indices  []int // var -> position in heap, -1 if absent
	activity *[]float64
}

func newVarOrder(act *[]float64) *varOrder {
	return &varOrder{activity: act}
}

func (o *varOrder) less(a, b Var) bool {
	return (*o.activity)[a] > (*o.activity)[b]
}

func (o *varOrder) grow(n int) {
	for len(o.indices) < n {
		o.indices = append(o.indices, -1)
	}
}

func (o *varOrder) contains(v Var) bool {
	return int(v) < len(o.indices) && o.indices[v] >= 0
}

func (o *varOrder) insert(v Var) {
	o.grow(int(v) + 1)
	if o.contains(v) {
		return
	}
	o.heap = append(o.heap, v)
	o.indices[v] = len(o.heap) - 1
	o.percolateUp(len(o.heap) - 1)
}

func (o *varOrder) empty() bool { return len(o.heap) == 0 }

func (o *varOrder) removeMin() Var {
	top := o.heap[0]
	last := o.heap[len(o.heap)-1]
	o.heap[0] = last
	o.indices[last] = 0
	o.heap = o.heap[:len(o.heap)-1]
	o.indices[top] = -1
	if len(o.heap) > 1 {
		o.percolateDown(0)
	}
	return top
}

// decreased restores the heap property after v's activity increased
// (a larger activity means v should move toward the root).
func (o *varOrder) decreased(v Var) {
	if o.contains(v) {
		o.percolateUp(o.indices[v])
	}
}

func (o *varOrder) percolateUp(i int) {
	v := o.heap[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !o.less(v, o.heap[parent]) {
			break
		}
		o.heap[i] = o.heap[parent]
		o.indices[o.heap[i]] = i
		i = parent
	}
	o.heap[i] = v
	o.indices[v] = i
}

func (o *varOrder) percolateDown(i int) {
	v := o.heap[i]
	n := len(o.heap)
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if child+1 < n && o.less(o.heap[child+1], o.heap[child]) {
			child++
		}
		if !o.less(o.heap[child], v) {
			break
		}
		o.heap[i] = o.heap[child]
		o.indices[o.heap[i]] = i
		i = child
	}
	o.heap[i] = v
	o.indices[v] = i
}

// luby computes the i-th element (1-based) of the Luby restart sequence
// scaled by y: y^luby(i) restart intervals 1,1,2,1,1,2,4,...
func luby(y float64, i int) float64 {
	// Find the finite subsequence that contains index i, and the index of
	// i within that subsequence.
	size, seq := 1, 0
	for size < i+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != i {
		size = (size - 1) / 2
		seq--
		i = i % size
	}
	pow := 1.0
	for ; seq > 0; seq-- {
		pow *= y
	}
	return pow
}
