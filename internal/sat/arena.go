package sat

// Clause storage. All clause literals live in one flat arena ([]Lit), and a
// clause is identified by a cref — an index into a parallel header slice.
// Compared to the previous []*clause representation this keeps propagation
// cache-friendly (an 8-byte watcher, literals contiguous in one backing
// array, no pointer chasing per visited clause) and makes clause references
// 4 bytes everywhere (watch lists, reason slots, proof chains).
//
// Deletion is logical: reduceDB marks a clause deleted and watch lists drop
// it lazily, exactly as before. What the arena adds is reclamation — when
// the deleted clauses' literals exceed a third of the arena, compact() slides
// the live blocks left. Headers are never moved, so a cref stays valid for
// the lifetime of the solver; only the offsets stored inside headers change,
// which is invisible to every holder of a cref.

// cref names a clause in the solver's clause database.
type cref int32

// crefUndef is the "no clause" sentinel (decision variables, empty reasons).
const crefUndef cref = -1

// Header flag bits.
const (
	flagLearnt uint8 = 1 << iota
	flagDel
)

// Learnt-clause tiers (Chanseok Oh's three-tier scheme). The zero value is
// tierLocal so that a header allocated without explicit tiering is always
// eligible for deletion; recordLearnt assigns the real tier from the LBD.
const (
	// tierLocal clauses are the churn pool: reduced by activity, weakest
	// half dropped whenever the pool outgrows its budget.
	tierLocal uint8 = iota
	// tierMid clauses (LBD <= midLBD) survive reductions but are demoted to
	// tierLocal when they stay out of conflict analysis for midAgeLimit
	// conflicts.
	tierMid
	// tierCore clauses (LBD <= coreLBD) are never deleted.
	tierCore
)

// Tier thresholds and the mid-tier disuse horizon (in conflicts).
const (
	coreLBD     = 2
	midLBD      = 6
	midAgeLimit = 30000
)

// Sharing filter: a learnt clause is offered to the Export hook when its
// glue is at most shareLBD (or it is binary — binary clauses are glue
// <= 2 by construction and cheap to propagate), capped at shareMaxLits
// literals so the bus carries compact, high-value lemmas only. Variables
// rather than constants so the benchmark harness can sweep the filter;
// production code leaves them alone.
var (
	shareLBD     = midLBD
	shareMaxLits = 30
)

// tierForLBD maps a glue value to its tier.
func tierForLBD(lbd int) uint8 {
	switch {
	case lbd <= coreLBD:
		return tierCore
	case lbd <= midLBD:
		return tierMid
	}
	return tierLocal
}

// clauseHdr is the per-clause metadata, 24 bytes.
type clauseHdr struct {
	off   int32   // start of the literal block in the arena
	size  int32   // number of literals
	act   float32 // activity (learnt clauses only)
	id    int32   // proof-tracing id; -1 when tracing is off
	touch int32   // conflict count at last analysis involvement (mid-tier aging)
	lbd   uint16  // glue: distinct decision levels at learn time, updated on use
	tier  uint8   // learnt tier (tierLocal/tierMid/tierCore)
	flags uint8
}

// clauseDB owns the arena and headers.
type clauseDB struct {
	arena  []Lit
	hdr    []clauseHdr
	wasted int // literals owned by deleted clauses, pending compaction
}

// alloc stores a new clause and returns its cref.
func (db *clauseDB) alloc(lits []Lit, learnt bool, id int32) cref {
	c := cref(len(db.hdr))
	off := int32(len(db.arena))
	db.arena = append(db.arena, lits...)
	var fl uint8
	if learnt {
		fl = flagLearnt
	}
	db.hdr = append(db.hdr, clauseHdr{off: off, size: int32(len(lits)), id: id, flags: fl})
	return c
}

// lits returns the clause's literal block. The slice aliases the arena: it
// is valid until the next alloc or compact, and writes through (watched-
// literal reordering relies on this).
func (db *clauseDB) lits(c cref) []Lit {
	h := &db.hdr[c]
	return db.arena[h.off : h.off+h.size : h.off+h.size]
}

func (db *clauseDB) size(c cref) int { return int(db.hdr[c].size) }

func (db *clauseDB) isLearnt(c cref) bool { return db.hdr[c].flags&flagLearnt != 0 }

func (db *clauseDB) isDeleted(c cref) bool { return db.hdr[c].flags&flagDel != 0 }

func (db *clauseDB) id(c cref) int32 { return db.hdr[c].id }

// markDeleted flags a clause for lazy watcher removal and accounts its
// literals as reclaimable.
func (db *clauseDB) markDeleted(c cref) {
	h := &db.hdr[c]
	if h.flags&flagDel == 0 {
		h.flags |= flagDel
		db.wasted += int(h.size)
	}
}

// shouldCompact reports whether enough of the arena is garbage to be worth
// sliding the live blocks together.
func (db *clauseDB) shouldCompact() bool {
	return db.wasted > 0 && db.wasted*3 > len(db.arena)
}

// compact reclaims the literal blocks of deleted clauses. Headers stay in
// place (crefs remain valid); deleted clauses end up with a zero-length
// block, which is safe because every access path checks isDeleted first.
// Must not be called while a lits() slice is live.
func (db *clauseDB) compact() {
	dst := int32(0)
	for i := range db.hdr {
		h := &db.hdr[i]
		if h.flags&flagDel != 0 {
			h.off, h.size = dst, 0
			continue
		}
		copy(db.arena[dst:dst+h.size], db.arena[h.off:h.off+h.size])
		h.off = dst
		dst += h.size
	}
	db.arena = db.arena[:dst]
	db.wasted = 0
}
