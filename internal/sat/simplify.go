package sat

import (
	"errors"
	"sort"
)

// Inprocessing (SatELite-style, applied between incremental Solve calls):
// removal of level-0-satisfied clauses, backward subsumption,
// self-subsuming resolution (clause strengthening), and bounded variable
// elimination over occurrence lists.
//
// Incremental safety contract: the client promises, via Freeze, never to
// mention a non-frozen variable in a future AddClause call or assumption.
// Under that promise elimination is sound — it computes ∃v.F by clause
// distribution, which preserves the formula's projection onto the remaining
// variables, so clauses added later over frozen variables see exactly the
// same models. Witness decoding still works for eliminated variables
// because Solve extends every model over the recorded eliminated clauses
// (extendModel). Violations of the promise do not corrupt silently: both
// AddClause and Solve panic when handed an eliminated variable.
//
// Proof tracing is incompatible with all of this (a strengthened or
// eliminated clause has no tagged original to attribute), so Simplify
// refuses to run — returning ErrTracingActive and changing nothing — while
// tracing is enabled.

// ErrTracingActive is returned by Simplify when proof tracing is enabled:
// inprocessing rewrites clauses, which would invalidate resolution chains,
// UNSAT cores, and the latch reasons PBA harvests from them.
var ErrTracingActive = errors.New("sat: Simplify is disabled while proof tracing is active")

// Inprocessing budgets. Subsumption and elimination are bounded per call so
// a Simplify between BMC depths stays a small fraction of solve time.
const (
	subBudgetLits  = 20_000_000 // literal visits per subsumption pass
	elimBudgetLits = 4_000_000  // literal visits per elimination pass
	// elimOccLimit skips variables occurring more often than this on both
	// sides (the resolvent check would be quadratic there and essentially
	// never pays off).
	elimOccLimit = 30
	// elimWidthLimit aborts an elimination that would produce a resolvent
	// wider than this.
	elimWidthLimit = 96
)

// Freeze marks v as part of the solver's external interface: Simplify will
// never eliminate a frozen variable. Calls nest (a counter, not a flag).
// The BMC stack freezes every literal cached for reuse across depths —
// frame values, structural-hash outputs, EMM interface signals, loop-free
// path literals — and leaves the per-depth auxiliary encoding eliminable.
func (s *Solver) Freeze(v Var) {
	if s.elimed[v] {
		panic("sat: Freeze on an already eliminated variable")
	}
	s.frozen[v]++
}

// Thaw undoes one Freeze, making v eliminable again once the count drops
// to zero.
func (s *Solver) Thaw(v Var) {
	if s.frozen[v] == 0 {
		panic("sat: Thaw without matching Freeze")
	}
	s.frozen[v]--
}

// Frozen reports whether v is currently protected from elimination.
func (s *Solver) Frozen(v Var) bool { return s.frozen[v] > 0 }

// Eliminated reports whether v was removed by bounded variable elimination.
func (s *Solver) Eliminated(v Var) bool { return s.elimed[v] }

// Simplify runs one inprocessing pass: propagate pending units, drop
// satisfied clauses and false literals, subsume and strengthen clauses
// (new ones since the last call against the whole database), then eliminate
// cheap non-frozen variables. Returns ErrTracingActive (and does nothing)
// when proof tracing is on. A nil return does not imply satisfiability —
// the pass may derive UNSAT, which the next Solve call reports.
func (s *Solver) Simplify() error {
	if s.trace {
		return ErrTracingActive
	}
	if !s.ok {
		return nil
	}
	s.cancelUntil(0)
	if confl := s.propagate(); confl != crefUndef {
		s.ok = false
		return nil
	}
	if s.interrupted {
		s.interrupted = false
		return nil
	}
	s.stats.Simplifies++
	// Level-0 antecedents are never consulted again (analyze skips level-0
	// literals; analyzeFinal treats a reason-less level-0 variable as a
	// standing fact). Clearing them unlocks every clause and guarantees no
	// deletion below leaves a dangling reason cref.
	for _, l := range s.trail {
		s.reasons[l.Var()] = crefUndef
	}
	newMark := len(s.db.hdr)
	queue := s.simpCleanAndIndex()
	if s.ok && !s.interrupted {
		s.forwardSubsume(queue)
	}
	if s.ok && !s.interrupted {
		s.eliminateVars()
	}
	s.interrupted = false
	s.rebuildLists()
	if s.db.shouldCompact() {
		s.db.compact()
	}
	s.simpMark = newMark
	if s.obsAttached {
		s.PublishObs()
	}
	return nil
}

// simpCleanAndIndex removes satisfied clauses and false literals, builds the
// occurrence lists and signature abstractions over the live database, and
// returns the subsumption queue (clauses allocated since the last Simplify,
// smallest first).
func (s *Solver) simpCleanAndIndex() []cref {
	for len(s.occ) < 2*len(s.assigns) {
		s.occ = append(s.occ, nil)
	}
	for i := range s.occ {
		s.occ[i] = s.occ[i][:0]
	}
	for len(s.litStamp) < 2*len(s.assigns) {
		s.litStamp = append(s.litStamp, 0)
	}
	for len(s.abst) < len(s.db.hdr) {
		s.abst = append(s.abst, 0)
	}
	var queue []cref
	index := func(list []cref) {
		for _, c := range list {
			if !s.ok || s.db.isDeleted(c) {
				continue
			}
			ls := s.db.lits(c)
			satisfied, nFalse := false, 0
			for _, l := range ls {
				switch s.value(l) {
				case True:
					satisfied = true
				case False:
					nFalse++
				}
			}
			if satisfied {
				s.removeClauseSimp(c)
				continue
			}
			if nFalse > 0 {
				s.detach(c)
				w := 0
				for _, l := range ls {
					if s.value(l) != False {
						ls[w] = l
						w++
					}
				}
				s.db.wasted += len(ls) - w
				s.db.hdr[c].size = int32(w)
				ls = s.db.lits(c)
				switch w {
				case 0:
					// All literals false at level 0: the database is UNSAT.
					// (Unreachable after a complete propagation; kept for
					// safety against interrupted passes.)
					s.ok = false
					continue
				case 1:
					if s.value(ls[0]) == Undef {
						s.uncheckedEnqueue(ls[0], crefUndef)
						s.simpPropagate()
					}
					continue
				default:
					s.attach(c)
				}
			}
			if len(ls) < 2 {
				continue // units carry no occurrence-list value
			}
			var ab uint64
			for _, l := range ls {
				s.occ[l] = append(s.occ[l], c)
				ab |= 1 << (uint(l.Var()) & 63)
			}
			s.abst[c] = ab
			if int(c) >= s.simpMark {
				queue = append(queue, c)
			}
		}
	}
	index(s.clauses)
	index(s.learnts)
	sort.Slice(queue, func(i, j int) bool { return s.db.size(queue[i]) < s.db.size(queue[j]) })
	return queue
}

// simpPropagate runs unit propagation at level 0 during inprocessing and
// keeps the no-level-0-reasons invariant.
func (s *Solver) simpPropagate() {
	from := s.qhead
	if confl := s.propagate(); confl != crefUndef {
		s.ok = false
	}
	for _, l := range s.trail[from:] {
		s.reasons[l.Var()] = crefUndef
	}
}

// forwardSubsume processes the queue: each clause C tries to subsume or
// strengthen every clause sharing C's least-occurring literal. Strict
// subsumption deletes the larger clause (promoting C to irredundant first
// when a learnt subsumes an original); a single flipped literal triggers
// self-subsuming resolution, strengthening the larger clause in place and
// requeueing it.
func (s *Solver) forwardSubsume(queue []cref) {
	budget := int64(subBudgetLits)
	for qi := 0; qi < len(queue); qi++ {
		if !s.ok || s.interrupted || budget < 0 {
			return
		}
		c := queue[qi]
		if s.db.isDeleted(c) || s.db.size(c) < 2 {
			continue
		}
		cl := s.db.lits(c)
		s.litGen++
		gen := s.litGen
		for _, l := range cl {
			s.litStamp[l] = gen
		}
		best := cl[0]
		for _, l := range cl[1:] {
			if len(s.occ[l]) < len(s.occ[best]) {
				best = l
			}
		}
		occs := s.occ[best]
		for oi := 0; oi < len(occs); oi++ {
			d := occs[oi]
			if d == c || s.db.isDeleted(d) || s.db.size(d) < len(cl) {
				continue
			}
			if s.abst[c]&^s.abst[d] != 0 {
				continue // C mentions a variable D does not: cannot subsume
			}
			budget -= int64(s.db.size(d))
			hits, flips := 0, 0
			var flip Lit
			for _, q := range s.db.lits(d) {
				if s.litStamp[q] == gen {
					hits++
				} else if s.litStamp[q.Not()] == gen {
					flips++
					flip = q
				}
			}
			switch {
			case hits == len(cl):
				if s.db.isLearnt(c) && !s.db.isLearnt(d) {
					// C is implied by the originals and contained in the
					// original D, so C may take D's place permanently.
					s.promoteLearnt(c)
				}
				s.stats.SubsumedClauses++
				s.removeClauseSimp(d)
			case hits == len(cl)-1 && flips == 1:
				// D is a self-subsumption target: resolving C and D on
				// flip's variable yields D minus flip.
				queue = s.simpStrengthen(d, flip, queue)
				if !s.ok {
					return
				}
			}
		}
	}
}

// promoteLearnt reclassifies a learnt clause as irredundant (original).
func (s *Solver) promoteLearnt(c cref) {
	s.db.hdr[c].flags &^= flagLearnt
}

// simpStrengthen removes literal l from clause c (self-subsuming
// resolution), maintaining watches, occurrence lists, and signatures, and
// requeues c for further subsumption rounds. Returns the updated queue.
func (s *Solver) simpStrengthen(c cref, l Lit, queue []cref) []cref {
	s.stats.StrengthenedClauses++
	s.detach(c)
	h := &s.db.hdr[c]
	ls := s.db.lits(c)
	for i, q := range ls {
		if q == l {
			ls[i] = ls[len(ls)-1]
			break
		}
	}
	h.size--
	s.db.wasted++
	s.occRemove(l, c)
	ls = s.db.lits(c)
	if len(ls) == 1 {
		switch s.value(ls[0]) {
		case False:
			s.ok = false
		case Undef:
			s.uncheckedEnqueue(ls[0], crefUndef)
			s.simpPropagate()
		}
		// The clause stays listed as a unit (mirroring AddClause) but holds
		// no watches and no occurrence entries.
		return queue
	}
	s.attach(c)
	var ab uint64
	for _, q := range ls {
		ab |= 1 << (uint(q.Var()) & 63)
	}
	s.abst[c] = ab
	return append(queue, c)
}

// eliminateVars runs bounded variable elimination: a non-frozen, unassigned
// variable is eliminated when the non-tautological resolvents of its
// positive and negative original occurrences number at most the clauses
// removed. Learnt clauses mentioning the variable are simply dropped (they
// are implied, and keeping them would let search assign the variable
// inconsistently with model reconstruction). Every removed original clause
// is recorded for extendModel.
func (s *Solver) eliminateVars() {
	type cand struct {
		v    Var
		cost int
	}
	var cands []cand
	for vi := range s.assigns {
		v := Var(vi)
		if s.frozen[v] > 0 || s.elimed[v] || s.assigns[v] != Undef {
			continue
		}
		np := s.liveOriginalOcc(PosLit(v))
		nn := s.liveOriginalOcc(NegLit(v))
		if np+nn == 0 {
			continue // unconstrained: leave it to branching defaults
		}
		if np > elimOccLimit && nn > elimOccLimit {
			continue
		}
		cands = append(cands, cand{v, np * nn})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].cost != cands[j].cost {
			return cands[i].cost < cands[j].cost
		}
		return cands[i].v < cands[j].v
	})
	budget := int64(elimBudgetLits)
	for _, cd := range cands {
		if !s.ok || s.interrupted || budget < 0 {
			return
		}
		// Assignments and strengthening since candidate collection may have
		// changed the picture; tryEliminate re-reads the live occurrences.
		if s.assigns[cd.v] != Undef || s.elimed[cd.v] {
			continue
		}
		s.tryEliminate(cd.v, &budget)
	}
}

func (s *Solver) liveOriginalOcc(l Lit) int {
	n := 0
	for _, c := range s.occ[l] {
		if !s.db.isDeleted(c) && !s.db.isLearnt(c) {
			n++
		}
	}
	return n
}

// tryEliminate attempts to eliminate v, committing only when every resolvent
// fits the width limit and the resolvent count does not exceed the number of
// original clauses removed.
func (s *Solver) tryEliminate(v Var, budget *int64) {
	var pos, neg, learntOcc []cref
	for _, c := range s.occ[PosLit(v)] {
		if s.db.isDeleted(c) {
			continue
		}
		if s.db.isLearnt(c) {
			learntOcc = append(learntOcc, c)
		} else {
			pos = append(pos, c)
		}
	}
	for _, c := range s.occ[NegLit(v)] {
		if s.db.isDeleted(c) {
			continue
		}
		if s.db.isLearnt(c) {
			learntOcc = append(learntOcc, c)
		} else {
			neg = append(neg, c)
		}
	}
	bound := len(pos) + len(neg)
	var resolvents [][]Lit
	for _, p := range pos {
		for _, n := range neg {
			*budget -= int64(s.db.size(p) + s.db.size(n))
			if *budget < 0 {
				return
			}
			r, ok := s.resolve(p, n, v)
			if !ok {
				continue // tautology
			}
			if len(r) > elimWidthLimit {
				return
			}
			resolvents = append(resolvents, r)
			if len(resolvents) > bound {
				return
			}
		}
	}
	// Commit. For model reconstruction record only the smaller side's
	// clauses plus a default unit of the opposite phase (MiniSat's scheme):
	// extendModel walks records newest-first, so the unit — appended last —
	// seeds v's default, and an unsatisfied clause record then forces the
	// stored phase. At most one side can ever be forced, because the model
	// satisfies every resolvent; recording both sides instead would let a
	// later record flip v and silently break an earlier one.
	if len(pos) <= len(neg) {
		for _, c := range pos {
			s.recordElimClause(PosLit(v), c)
		}
		s.elimClauses = append(s.elimClauses, []Lit{NegLit(v)})
	} else {
		for _, c := range neg {
			s.recordElimClause(NegLit(v), c)
		}
		s.elimClauses = append(s.elimClauses, []Lit{PosLit(v)})
	}
	for _, c := range pos {
		s.removeClauseSimp(c)
	}
	for _, c := range neg {
		s.removeClauseSimp(c)
	}
	for _, c := range learntOcc {
		s.removeClauseSimp(c)
	}
	s.occ[PosLit(v)] = s.occ[PosLit(v)][:0]
	s.occ[NegLit(v)] = s.occ[NegLit(v)][:0]
	s.elimed[v] = true
	s.stats.EliminatedVars++
	for _, r := range resolvents {
		s.addSimpClause(r)
		if !s.ok {
			return
		}
	}
}

// recordElimClause snapshots clause c with vl (the eliminated variable's
// literal in c) moved to position 0, the layout extendModel relies on.
func (s *Solver) recordElimClause(vl Lit, c cref) {
	ls := s.db.lits(c)
	rec := make([]Lit, 0, len(ls))
	rec = append(rec, vl)
	for _, l := range ls {
		if l != vl {
			rec = append(rec, l)
		}
	}
	s.elimClauses = append(s.elimClauses, rec)
}

// resolve computes the resolvent of p and n on v (v positive in p, negative
// in n). Reports ok=false for tautologies.
func (s *Solver) resolve(p, n cref, v Var) ([]Lit, bool) {
	s.litGen++
	gen := s.litGen
	out := make([]Lit, 0, s.db.size(p)+s.db.size(n)-2)
	for _, l := range s.db.lits(p) {
		if l.Var() == v {
			continue
		}
		s.litStamp[l] = gen
		out = append(out, l)
	}
	for _, l := range s.db.lits(n) {
		if l.Var() == v {
			continue
		}
		if s.litStamp[l.Not()] == gen {
			return nil, false
		}
		if s.litStamp[l] == gen {
			continue
		}
		s.litStamp[l] = gen
		out = append(out, l)
	}
	return out, true
}

// addSimpClause feeds a resolvent through the normal clause-addition path
// (level-0 value checks, unit propagation) and registers any allocated
// clause in the occurrence index.
func (s *Solver) addSimpClause(lits []Lit) {
	before := len(s.db.hdr)
	trailFrom := len(s.trail)
	s.AddClauseTagged(-1, lits)
	for _, l := range s.trail[trailFrom:] {
		s.reasons[l.Var()] = crefUndef
	}
	if len(s.db.hdr) == before {
		return // satisfied or tautological: nothing stored
	}
	c := cref(before)
	for len(s.abst) < len(s.db.hdr) {
		s.abst = append(s.abst, 0)
	}
	if s.db.isDeleted(c) || s.db.size(c) < 2 {
		return
	}
	var ab uint64
	for _, l := range s.db.lits(c) {
		s.occ[l] = append(s.occ[l], c)
		ab |= 1 << (uint(l.Var()) & 63)
	}
	s.abst[c] = ab
}

// removeClauseSimp deletes a clause during inprocessing: watches are removed
// eagerly (binary implication lists are never consulted lazily), occurrence
// entries lazily (isDeleted filters them).
func (s *Solver) removeClauseSimp(c cref) {
	if s.db.isDeleted(c) {
		return
	}
	if s.db.isLearnt(c) {
		s.stats.LearntsDeleted++
	}
	s.detach(c)
	s.db.markDeleted(c)
}

// detach unhooks a clause from propagation. Safe on units (no watches).
func (s *Solver) detach(c cref) {
	ls := s.db.lits(c)
	if len(ls) < 2 {
		return
	}
	if len(ls) == 2 {
		s.removeBinWatch(ls[0], c)
		s.removeBinWatch(ls[1], c)
		return
	}
	s.removeWatch(ls[0], c)
	s.removeWatch(ls[1], c)
}

func (s *Solver) removeWatch(l Lit, c cref) {
	ws := s.watches[l.Not()]
	for i := range ws {
		if ws[i].c == c {
			ws[i] = ws[len(ws)-1]
			s.watches[l.Not()] = ws[:len(ws)-1]
			return
		}
	}
}

func (s *Solver) removeBinWatch(l Lit, c cref) {
	ws := s.binWatches[l.Not()]
	for i := range ws {
		if ws[i].c == c {
			ws[i] = ws[len(ws)-1]
			s.binWatches[l.Not()] = ws[:len(ws)-1]
			return
		}
	}
}

func (s *Solver) occRemove(l Lit, c cref) {
	oc := s.occ[l]
	for i := range oc {
		if oc[i] == c {
			oc[i] = oc[len(oc)-1]
			s.occ[l] = oc[:len(oc)-1]
			return
		}
	}
}

// rebuildLists drops deleted clauses from the bookkeeping lists, moves
// promoted learnts to the original list, and recounts the tiers.
func (s *Solver) rebuildLists() {
	cl := s.clauses[:0]
	for _, c := range s.clauses {
		if !s.db.isDeleted(c) {
			cl = append(cl, c)
		}
	}
	le := s.learnts[:0]
	s.nTier = [3]int{}
	for _, c := range s.learnts {
		if s.db.isDeleted(c) {
			continue
		}
		if !s.db.isLearnt(c) {
			cl = append(cl, c) // promoted to irredundant by subsumption
			continue
		}
		le = append(le, c)
		s.nTier[s.db.hdr[c].tier]++
	}
	s.clauses, s.learnts = cl, le
}

// extendModel completes a model over eliminated variables: walking the
// recorded clauses newest-elimination-first, any unsatisfied clause is fixed
// by making its leading literal (the eliminated variable's) true. The
// resolvents added at elimination time guarantee this never breaks an
// earlier-recorded clause.
func (s *Solver) extendModel() {
	for i := len(s.elimClauses) - 1; i >= 0; i-- {
		rec := s.elimClauses[i]
		satisfied := false
		for _, l := range rec {
			if s.model[l.Var()].XorSign(l.Sign()) == True {
				satisfied = true
				break
			}
		}
		if !satisfied {
			l0 := rec[0]
			s.model[l0.Var()] = True.XorSign(l0.Sign())
		}
	}
	// Eliminated variables whose every record was already satisfied stay
	// unconstrained; give them a definite value so witness decoding never
	// reads Undef.
	for v, e := range s.elimed {
		if e && s.model[v] == Undef {
			s.model[v] = False
		}
	}
}
