package sat

import "testing"

// TestImportFilter exercises importLearnt's normalization and safety rules:
// unknown and eliminated variables are dropped (never a panic), tautologies
// and level-0-satisfied clauses are dropped, false-at-0 literals are
// strengthened away, units are enqueued, and ordinary clauses land in the
// learnt database with the carried glue.
func TestImportFilter(t *testing.T) {
	s := New()
	addVars(s, 4)
	// Eliminate variable 4 via Simplify: make it pure so elimination fires.
	s.AddClause(lits(1, 4)...)
	s.AddClause(lits(2, 4)...)
	s.Freeze(Var(0))
	s.Freeze(Var(1))
	s.Freeze(Var(2))
	if err := s.Simplify(); err != nil {
		t.Fatalf("Simplify: %v", err)
	}
	if !s.elimed[Var(3)] {
		t.Skip("variable 4 not eliminated; elimination heuristics changed")
	}

	inject := [][]Lit{
		lits(1, 9),     // unknown variable: drop
		lits(1, 4),     // eliminated variable: drop
		lits(1, -1, 2), // tautology: drop
		lits(1, 1, 2),  // duplicate literal: kept, deduped
		lits(-2),       // unit: enqueued at level 0
		lits(2, 3),     // satisfied at level 0 once -2... no: -2 makes 2 false, clause strengthens to unit 3
	}
	want := []bool{false, false, false, true, true, true}
	got := make([]bool, 0, len(inject))
	s.Import = func(add func([]Lit, int) bool) {
		for _, cl := range inject {
			got = append(got, add(cl, 2))
		}
		s.Import = nil // one-shot
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("Solve = %v, want Sat", st)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("import[%d] (%v) = %v, want %v", i, inject[i], got[i], want[i])
		}
	}
	if s.Stats().ImportedClauses != 3 {
		t.Errorf("ImportedClauses = %d, want 3", s.Stats().ImportedClauses)
	}
	// The imports must actually constrain the model: -2 was imported as a
	// unit, and (2|3) strengthened to unit 3.
	if s.Value(Var(1)) != False {
		t.Errorf("imported unit -2 not reflected in model")
	}
	if s.Value(Var(2)) != True {
		t.Errorf("strengthened unit 3 not reflected in model")
	}
}

// TestImportConflict checks that importing a clause whose literals are all
// false at level 0 makes the database UNSAT.
func TestImportConflict(t *testing.T) {
	s := New()
	addVars(s, 2)
	s.AddClause(lits(1)...)
	s.AddClause(lits(2)...)
	s.Import = func(add func([]Lit, int) bool) {
		if !add(lits(-1, -2), 1) {
			t.Errorf("conflicting import not incorporated")
		}
		s.Import = nil
	}
	if st := s.Solve(); st != Unsat {
		t.Fatalf("Solve = %v, want Unsat after conflicting import", st)
	}
}

// TestExportFilter checks that learnt clauses passing the LBD/size filter
// reach the Export hook and are counted.
func TestExportFilter(t *testing.T) {
	s := New()
	addVars(s, 8)
	// Pigeonhole 3 pigeons / 2 holes: UNSAT, forces real conflict analysis.
	p := func(pi, h int) int { return pi*2 + h + 1 }
	for pi := 0; pi < 3; pi++ {
		s.AddClause(lits(p(pi, 0), p(pi, 1))...)
	}
	for h := 0; h < 2; h++ {
		for a := 0; a < 3; a++ {
			for b := a + 1; b < 3; b++ {
				s.AddClause(lits(-p(a, h), -p(b, h))...)
			}
		}
	}
	exported := 0
	s.Export = func(cl []Lit, lbd int) {
		exported++
		if len(cl) > shareMaxLits {
			t.Errorf("exported clause of %d lits exceeds cap %d", len(cl), shareMaxLits)
		}
		if lbd > shareLBD && len(cl) > 2 {
			t.Errorf("exported clause lbd=%d len=%d fails filter", lbd, len(cl))
		}
	}
	if st := s.Solve(); st != Unsat {
		t.Fatalf("Solve = %v, want Unsat", st)
	}
	if exported == 0 {
		t.Fatalf("no clauses exported on an UNSAT instance with conflicts")
	}
	if s.Stats().ExportedClauses != int64(exported) {
		t.Errorf("ExportedClauses = %d, want %d", s.Stats().ExportedClauses, exported)
	}
}

// TestExportFilterOverride checks that per-solver ShareLBD/ShareMaxLits
// replace the package defaults: a maximally strict override (glue 1, 2
// lits) must export strictly fewer clauses than the default filter on the
// same instance, and everything it does export must satisfy the override.
func TestExportFilterOverride(t *testing.T) {
	build := func() *Solver {
		s := New()
		addVars(s, 12)
		p := func(pi, h int) int { return pi*3 + h + 1 }
		for pi := 0; pi < 4; pi++ {
			s.AddClause(lits(p(pi, 0), p(pi, 1), p(pi, 2))...)
		}
		for h := 0; h < 3; h++ {
			for a := 0; a < 4; a++ {
				for b := a + 1; b < 4; b++ {
					s.AddClause(lits(-p(a, h), -p(b, h))...)
				}
			}
		}
		return s
	}
	run := func(lbd, maxLits int) int {
		s := build()
		s.ShareLBD, s.ShareMaxLits = lbd, maxLits
		n := 0
		s.Export = func(cl []Lit, gotLBD int) {
			n++
			if maxLits > 0 && len(cl) > maxLits {
				t.Errorf("override maxLits=%d: exported %d-lit clause", maxLits, len(cl))
			}
			if lbd > 0 && gotLBD > lbd && len(cl) > 2 {
				t.Errorf("override lbd=%d: exported lbd=%d len=%d", lbd, gotLBD, len(cl))
			}
		}
		if st := s.Solve(); st != Unsat {
			t.Fatalf("Solve = %v, want Unsat", st)
		}
		return n
	}
	def := run(0, 0)
	strict := run(1, 2)
	if def == 0 {
		t.Fatalf("default filter exported nothing")
	}
	if strict >= def {
		t.Errorf("strict override exported %d clauses, default %d — override not applied", strict, def)
	}
}
