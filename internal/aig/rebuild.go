package aig

// RebuildSpec selects what survives a Rebuild. Every predicate defaults to
// "keep everything" when nil, so the zero spec is an identity rebuild that
// still routes all gates through And() — i.e. a structural-dedup /
// constant-fold pass.
type RebuildSpec struct {
	// KeepInput/KeepLatch decide per primary input node and per latch
	// index whether the element is declared in the rebuilt netlist.
	KeepInput func(id NodeID) bool
	KeepLatch func(i int) bool

	// LatchConst substitutes a latch (by its node id) with a constant
	// literal instead of declaring it. It overrides KeepLatch: a latch in
	// LatchConst is never declared. The caller is responsible for the
	// substitution being sound (e.g. proved inductively constant).
	LatchConst map[NodeID]Lit

	// KeepMem/KeepRead/KeepWrite decide per memory index, and per
	// (memory, port) index pair, which memory modules and ports survive.
	// Read data nodes of dropped ports must be unreachable from any kept
	// root, or the rebuild panics on an undeclared non-gate node.
	KeepMem   func(mi int) bool
	KeepRead  func(mi, ri int) bool
	KeepWrite func(mi, wi int) bool

	// Props selects which properties to emit (in the given order,
	// renumbered from 0). Nil keeps all properties in order.
	Props []int

	// Name names the rebuilt netlist; empty reuses the source name.
	Name string
}

// RebuildMap records how a rebuilt netlist's elements relate to the source
// netlist, in both directions. Index slices use -1 for "dropped".
type RebuildMap struct {
	// Input/Latch map source input/latch node ids to rebuilt node ids
	// (absent = dropped or substituted by a constant).
	Input map[NodeID]NodeID
	Latch map[NodeID]NodeID

	// LatchIndex maps rebuilt latch index -> source latch index.
	LatchIndex []int
	// LatchOf maps source latch index -> rebuilt latch index or -1.
	LatchOf []int

	// Mem maps rebuilt memory index -> source memory index; MemOf is the
	// inverse (source -> rebuilt or -1).
	Mem   []int
	MemOf []int

	// Read[mi][ri] maps (rebuilt memory, rebuilt read port) -> source
	// read-port index; ReadOf[smi][sri] is the inverse (-1 = dropped).
	// Write/WriteOf are the same for write ports.
	Read    [][]int
	ReadOf  [][]int
	Write   [][]int
	WriteOf [][]int

	// Prop maps rebuilt property index -> source property index.
	Prop []int
}

// Rebuild copies n into a fresh netlist, keeping only the elements the
// spec selects and re-deriving every gate through And() (so the result is
// structurally hashed and constant-folded even for an identity spec). All
// environment constraints are always preserved. The returned map relates
// the two netlists in both directions.
//
// Reachability is the caller's contract: every literal feeding a kept
// latch next, kept port net, selected property, or constraint must bottom
// out in kept (or constant-substituted) inputs, latches, and read ports;
// otherwise Rebuild panics.
func Rebuild(n *Netlist, sp RebuildSpec) (*Netlist, *RebuildMap) {
	keepInput := sp.KeepInput
	if keepInput == nil {
		keepInput = func(NodeID) bool { return true }
	}
	keepLatch := sp.KeepLatch
	if keepLatch == nil {
		keepLatch = func(int) bool { return true }
	}
	keepMem := sp.KeepMem
	if keepMem == nil {
		keepMem = func(int) bool { return true }
	}
	keepRead := sp.KeepRead
	if keepRead == nil {
		keepRead = func(int, int) bool { return true }
	}
	keepWrite := sp.KeepWrite
	if keepWrite == nil {
		keepWrite = func(int, int) bool { return true }
	}
	name := sp.Name
	if name == "" {
		name = n.Name
	}

	out := New(name)
	rm := &RebuildMap{
		Input:   make(map[NodeID]NodeID),
		Latch:   make(map[NodeID]NodeID),
		LatchOf: make([]int, len(n.Latches)),
		MemOf:   make([]int, len(n.Memories)),
		ReadOf:  make([][]int, len(n.Memories)),
		WriteOf: make([][]int, len(n.Memories)),
	}
	newLit := make(map[NodeID]Lit)
	newLit[0] = False
	for id, l := range sp.LatchConst {
		newLit[id] = l
	}

	for _, id := range n.Inputs {
		if !keepInput(id) {
			continue
		}
		l := out.NewInput(n.InputName(id))
		newLit[id] = l
		rm.Input[id] = l.Node()
	}
	for i, l := range n.Latches {
		rm.LatchOf[i] = -1
		if _, sub := sp.LatchConst[l.Node]; sub || !keepLatch(i) {
			continue
		}
		nl := out.NewLatch(l.Name, l.Init)
		newLit[l.Node] = nl
		rm.Latch[l.Node] = nl.Node()
		rm.LatchOf[i] = len(rm.LatchIndex)
		rm.LatchIndex = append(rm.LatchIndex, i)
	}

	newMems := make([]*Memory, len(n.Memories))
	for mi, m := range n.Memories {
		rm.MemOf[mi] = -1
		rm.ReadOf[mi] = constSlice(len(m.Reads), -1)
		rm.WriteOf[mi] = constSlice(len(m.Writes), -1)
		if !keepMem(mi) {
			continue
		}
		nm := out.NewMemory(m.Name, m.AW, m.DW, m.Init)
		nm.Image = m.Image
		newMems[mi] = nm
		rm.MemOf[mi] = len(rm.Mem)
		rm.Mem = append(rm.Mem, mi)
		var reads []int
		for ri, rp := range m.Reads {
			if !keepRead(mi, ri) {
				continue
			}
			nrp := out.NewReadPort(nm)
			for b, dn := range rp.Data {
				newLit[dn] = MkLit(nrp.Data[b], false)
			}
			rm.ReadOf[mi][ri] = len(reads)
			reads = append(reads, ri)
		}
		rm.Read = append(rm.Read, reads)
	}

	var copyLit func(l Lit) Lit
	copyLit = func(l Lit) Lit {
		id := l.Node()
		if v, ok := newLit[id]; ok {
			return v.XorInv(l.Inverted())
		}
		node := n.nodes[id]
		if node.Kind != KAnd {
			panic("aig: rebuild reached an undeclared non-gate node")
		}
		v := out.And(copyLit(node.F0), copyLit(node.F1))
		newLit[id] = v
		return v.XorInv(l.Inverted())
	}

	for i, l := range n.Latches {
		if rm.LatchOf[i] >= 0 {
			out.SetNext(newLit[l.Node], copyLit(l.Next))
		}
	}
	for mi, m := range n.Memories {
		nm := newMems[mi]
		if nm == nil {
			continue
		}
		for nri, ri := range rm.Read[rm.MemOf[mi]] {
			rp := m.Reads[ri]
			addr := make([]Lit, len(rp.Addr))
			for i, a := range rp.Addr {
				addr[i] = copyLit(a)
			}
			out.SetReadAddr(nm, nm.Reads[nri], addr, copyLit(rp.En))
		}
		var writes []int
		for wi, wp := range m.Writes {
			if !keepWrite(mi, wi) {
				continue
			}
			addr := make([]Lit, len(wp.Addr))
			for i, a := range wp.Addr {
				addr[i] = copyLit(a)
			}
			data := make([]Lit, len(wp.Data))
			for i, d := range wp.Data {
				data[i] = copyLit(d)
			}
			out.NewWritePort(nm, addr, data, copyLit(wp.En))
			rm.WriteOf[mi][wi] = len(writes)
			writes = append(writes, wi)
		}
		rm.Write = append(rm.Write, writes)
	}

	props := sp.Props
	if props == nil {
		props = make([]int, len(n.Props))
		for i := range props {
			props[i] = i
		}
	}
	for _, pi := range props {
		p := n.Props[pi]
		out.AddProperty(p.Name, copyLit(p.OK))
		rm.Prop = append(rm.Prop, pi)
	}
	for _, c := range n.Constraints {
		out.AddConstraint(copyLit(c))
	}
	return out, rm
}

func constSlice(n, v int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = v
	}
	return s
}
