package aig

import "testing"

// buildCOIFixture: property depends on latch qa and memory A; latch qb and
// memory B are dead weight.
func buildCOIFixture() (*Netlist, Lit, Lit) {
	n := New("coi")
	qa := n.NewLatch("qa", Init0)
	qb := n.NewLatch("qb", Init0)
	in := n.NewInput("in")
	n.SetNext(qa, n.Xor(qa, in))
	n.SetNext(qb, n.And(qb, in))

	memA := n.NewMemory("memA", 2, 1, MemZero)
	rpA := n.NewReadPort(memA)
	n.SetReadAddr(memA, rpA, []Lit{qa, qa}, True)
	n.NewWritePort(memA, []Lit{qa, in}, []Lit{qa}, in)

	memB := n.NewMemory("memB", 2, 1, MemZero)
	rpB := n.NewReadPort(memB)
	n.SetReadAddr(memB, rpB, []Lit{qb, qb}, True)

	n.AddProperty("p", n.Or(qa, rpA.DataLits()[0]))
	return n, qa, qb
}

func TestExtractConeDropsDeadLogic(t *testing.T) {
	n, _, _ := buildCOIFixture()
	out, mapping := ExtractCone(n, []int{0})
	if len(out.Latches) != 1 {
		t.Fatalf("expected 1 latch, got %d", len(out.Latches))
	}
	if out.Latches[0].Name != "qa" {
		t.Fatalf("wrong latch kept: %s", out.Latches[0].Name)
	}
	if len(out.Memories) != 1 || out.Memories[0].Name != "memA" {
		t.Fatalf("memory selection wrong: %d", len(out.Memories))
	}
	if len(out.Memories[0].Writes) != 1 || len(out.Memories[0].Reads) != 1 {
		t.Fatalf("ports lost")
	}
	if len(out.Props) != 1 {
		t.Fatalf("property lost")
	}
	if len(mapping.Latch) == 0 || len(mapping.Input) == 0 {
		t.Fatalf("empty mapping: %+v", mapping)
	}
	if len(mapping.Mem) != 1 || mapping.Mem[0] != 0 {
		t.Fatalf("memory map wrong: %v", mapping.Mem)
	}
}

func TestExtractConeKeepsConstraints(t *testing.T) {
	n, _, qb := buildCOIFixture()
	// A constraint over qb forces its cone back in.
	n.AddConstraint(qb.Not())
	out, _ := ExtractCone(n, []int{0})
	if len(out.Latches) != 2 {
		t.Fatalf("constraint cone must be kept: %d latches", len(out.Latches))
	}
	if len(out.Constraints) != 1 {
		t.Fatalf("constraint lost")
	}
}

func TestExtractConePropertySubset(t *testing.T) {
	n, _, qb := buildCOIFixture()
	n.AddProperty("pb", qb)
	// Selecting only the second property keeps only qb's cone (and no
	// memory at all: memB is read but feeds nothing selected).
	out, _ := ExtractCone(n, []int{1})
	if len(out.Latches) != 1 || out.Latches[0].Name != "qb" {
		t.Fatalf("wrong cone for pb")
	}
	if len(out.Memories) != 0 {
		t.Fatalf("no memory should be kept for pb")
	}
}

func TestExtractConePreservesStats(t *testing.T) {
	n, _, _ := buildCOIFixture()
	out, _ := ExtractCone(n, []int{0})
	if out.Stats().Inputs != 1 {
		t.Fatalf("input count wrong: %+v", out.Stats())
	}
}
