package aig

// ExtractCone builds a reduced copy of the netlist containing only the
// cone of influence of the selected properties (and all environment
// constraints): the latches, gates, inputs, and memories that can affect
// them, found by a fixpoint over combinational support — a latch pulls in
// its next-state cone, a memory read-data node pulls in the whole memory
// module (all its ports' address/data/enable cones, since any write may be
// forwarded to the read).
//
// The returned mapping translates old input/latch node ids to new ones so
// witnesses can be related across the reduction.
func ExtractCone(n *Netlist, props []int) (*Netlist, map[NodeID]NodeID) {
	// Fixpoint: collect every node reachable backward from the roots,
	// expanding latches through their next functions and memory read
	// nodes through their module's port nets.
	needNode := make([]bool, n.NumNodes())
	needMem := make([]bool, len(n.Memories))

	memOfRead := make(map[NodeID]int)
	for mi, m := range n.Memories {
		for _, rp := range m.Reads {
			for _, dn := range rp.Data {
				memOfRead[dn] = mi
			}
		}
	}

	var stack []NodeID
	push := func(l Lit) {
		id := l.Node()
		if !needNode[id] {
			needNode[id] = true
			stack = append(stack, id)
		}
	}
	for _, pi := range props {
		push(n.Props[pi].OK)
	}
	for _, c := range n.Constraints {
		push(c)
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		node := n.nodes[id]
		switch node.Kind {
		case KAnd:
			push(node.F0)
			push(node.F1)
		case KLatch:
			push(n.latchOf[id].Next)
		case KMemRead:
			mi := memOfRead[id]
			if needMem[mi] {
				continue
			}
			needMem[mi] = true
			m := n.Memories[mi]
			for _, rp := range m.Reads {
				for _, a := range rp.Addr {
					push(a)
				}
				push(rp.En)
				for _, dn := range rp.Data {
					if !needNode[dn] {
						needNode[dn] = true
					}
				}
			}
			for _, wp := range m.Writes {
				for _, a := range wp.Addr {
					push(a)
				}
				for _, d := range wp.Data {
					push(d)
				}
				push(wp.En)
			}
		}
	}

	// Rebuild.
	out := New(n.Name + "_coi")
	mapping := make(map[NodeID]NodeID)
	newLit := make(map[NodeID]Lit)
	newLit[0] = False

	for _, id := range n.Inputs {
		if !needNode[id] {
			continue
		}
		l := out.NewInput(n.InputName(id))
		newLit[id] = l
		mapping[id] = l.Node()
	}
	for _, l := range n.Latches {
		if !needNode[l.Node] {
			continue
		}
		nl := out.NewLatch(l.Name, l.Init)
		newLit[l.Node] = nl
		mapping[l.Node] = nl.Node()
	}
	newMems := make([]*Memory, len(n.Memories))
	for mi, m := range n.Memories {
		if !needMem[mi] {
			continue
		}
		nm := out.NewMemory(m.Name, m.AW, m.DW, m.Init)
		nm.Image = m.Image
		newMems[mi] = nm
		for _, rp := range m.Reads {
			nrp := out.NewReadPort(nm)
			for b, dn := range rp.Data {
				newLit[dn] = MkLit(nrp.Data[b], false)
			}
		}
	}

	var copyLit func(l Lit) Lit
	copyLit = func(l Lit) Lit {
		id := l.Node()
		if v, ok := newLit[id]; ok {
			return v.XorInv(l.Inverted())
		}
		node := n.nodes[id]
		if node.Kind != KAnd {
			panic("aig: cone copy reached an undeclared non-gate node")
		}
		v := out.And(copyLit(node.F0), copyLit(node.F1))
		newLit[id] = v
		return v.XorInv(l.Inverted())
	}

	for _, l := range n.Latches {
		if needNode[l.Node] {
			out.SetNext(newLit[l.Node], copyLit(l.Next))
		}
	}
	for mi, m := range n.Memories {
		if !needMem[mi] {
			continue
		}
		nm := newMems[mi]
		for ri, rp := range m.Reads {
			addr := make([]Lit, len(rp.Addr))
			for i, a := range rp.Addr {
				addr[i] = copyLit(a)
			}
			out.SetReadAddr(nm, nm.Reads[ri], addr, copyLit(rp.En))
		}
		for _, wp := range m.Writes {
			addr := make([]Lit, len(wp.Addr))
			for i, a := range wp.Addr {
				addr[i] = copyLit(a)
			}
			data := make([]Lit, len(wp.Data))
			for i, d := range wp.Data {
				data[i] = copyLit(d)
			}
			out.NewWritePort(nm, addr, data, copyLit(wp.En))
		}
	}
	for _, pi := range props {
		p := n.Props[pi]
		out.AddProperty(p.Name, copyLit(p.OK))
	}
	for _, c := range n.Constraints {
		out.AddConstraint(copyLit(c))
	}
	return out, mapping
}
