package aig

// ExtractCone builds a reduced copy of the netlist containing only the
// cone of influence of the selected properties (and all environment
// constraints): the latches, gates, inputs, and memories that can affect
// them, found by a fixpoint over combinational support — a latch pulls in
// its next-state cone, a memory read-data node pulls in the whole memory
// module (all its ports' address/data/enable cones, since any write may be
// forwarded to the read).
//
// The reduction is memory-granular: a reached memory keeps all its ports.
// Port-granular pruning is layered on top by package pass. The returned
// RebuildMap relates the reduced netlist to the source in both directions
// so witnesses and latch-reason sets can be translated across it.
func ExtractCone(n *Netlist, props []int) (*Netlist, *RebuildMap) {
	needNode, needMem := coneOf(n, props)
	return Rebuild(n, RebuildSpec{
		Name:      n.Name + "_coi",
		KeepInput: func(id NodeID) bool { return needNode[id] },
		KeepLatch: func(i int) bool { return needNode[n.Latches[i].Node] },
		KeepMem:   func(mi int) bool { return needMem[mi] },
		Props:     props,
	})
}

// coneOf runs the cone-of-influence fixpoint and returns which nodes and
// which memory modules the selected properties (plus all constraints) can
// depend on.
func coneOf(n *Netlist, props []int) (needNode []bool, needMem []bool) {
	needNode = make([]bool, n.NumNodes())
	needMem = make([]bool, len(n.Memories))

	memOfRead := make(map[NodeID]int)
	for mi, m := range n.Memories {
		for _, rp := range m.Reads {
			for _, dn := range rp.Data {
				memOfRead[dn] = mi
			}
		}
	}

	var stack []NodeID
	push := func(l Lit) {
		id := l.Node()
		if !needNode[id] {
			needNode[id] = true
			stack = append(stack, id)
		}
	}
	for _, pi := range props {
		push(n.Props[pi].OK)
	}
	for _, c := range n.Constraints {
		push(c)
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		node := n.nodes[id]
		switch node.Kind {
		case KAnd:
			push(node.F0)
			push(node.F1)
		case KLatch:
			push(n.latchOf[id].Next)
		case KMemRead:
			mi := memOfRead[id]
			if needMem[mi] {
				continue
			}
			needMem[mi] = true
			m := n.Memories[mi]
			for _, rp := range m.Reads {
				for _, a := range rp.Addr {
					push(a)
				}
				push(rp.En)
				for _, dn := range rp.Data {
					if !needNode[dn] {
						needNode[dn] = true
					}
				}
			}
			for _, wp := range m.Writes {
				for _, a := range wp.Addr {
					push(a)
				}
				for _, d := range wp.Data {
					push(d)
				}
				push(wp.En)
			}
		}
	}
	return needNode, needMem
}
