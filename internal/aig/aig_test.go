package aig

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstantFolding(t *testing.T) {
	n := New("t")
	a := n.NewInput("a")
	if n.And(a, False) != False {
		t.Fatalf("a∧0 must be 0")
	}
	if n.And(False, a) != False {
		t.Fatalf("0∧a must be 0")
	}
	if n.And(a, True) != a {
		t.Fatalf("a∧1 must be a")
	}
	if n.And(a, a) != a {
		t.Fatalf("a∧a must be a")
	}
	if n.And(a, a.Not()) != False {
		t.Fatalf("a∧¬a must be 0")
	}
	if n.NumAnds() != 0 {
		t.Fatalf("no gates should have been created")
	}
}

func TestStructuralHashing(t *testing.T) {
	n := New("t")
	a, b := n.NewInput("a"), n.NewInput("b")
	g1 := n.And(a, b)
	g2 := n.And(b, a)
	if g1 != g2 {
		t.Fatalf("And must be commutative under strashing")
	}
	if n.NumAnds() != 1 {
		t.Fatalf("expected 1 gate, got %d", n.NumAnds())
	}
}

func TestDerivedGates(t *testing.T) {
	n := New("t")
	a, b := n.NewInput("a"), n.NewInput("b")
	// Check truth tables through evaluation of the graph.
	eval := func(root Lit, va, vb bool) bool {
		var rec func(l Lit) bool
		rec = func(l Lit) bool {
			node := n.NodeAt(l.Node())
			var v bool
			switch node.Kind {
			case KConst:
				v = false
			case KInput:
				if l.Node() == a.Node() {
					v = va
				} else {
					v = vb
				}
			case KAnd:
				v = rec(node.F0) && rec(node.F1)
			default:
				t.Fatalf("unexpected node kind %v", node.Kind)
			}
			if l.Inverted() {
				return !v
			}
			return v
		}
		return rec(root)
	}
	or := n.Or(a, b)
	xor := n.Xor(a, b)
	xnor := n.Xnor(a, b)
	imp := n.Implies(a, b)
	for _, va := range []bool{false, true} {
		for _, vb := range []bool{false, true} {
			if eval(or, va, vb) != (va || vb) {
				t.Fatalf("or wrong at %v %v", va, vb)
			}
			if eval(xor, va, vb) != (va != vb) {
				t.Fatalf("xor wrong at %v %v", va, vb)
			}
			if eval(xnor, va, vb) != (va == vb) {
				t.Fatalf("xnor wrong at %v %v", va, vb)
			}
			if eval(imp, va, vb) != (!va || vb) {
				t.Fatalf("implies wrong at %v %v", va, vb)
			}
		}
	}
}

func TestMuxFolding(t *testing.T) {
	n := New("t")
	s, a := n.NewInput("s"), n.NewInput("a")
	if n.Mux(s, a, a) != a {
		t.Fatalf("mux with equal branches must fold")
	}
}

func TestAndsOrs(t *testing.T) {
	n := New("t")
	if n.Ands() != True {
		t.Fatalf("empty Ands must be True")
	}
	if n.Ors() != False {
		t.Fatalf("empty Ors must be False")
	}
	a, b, c := n.NewInput("a"), n.NewInput("b"), n.NewInput("c")
	if n.Ands(a, True, b, c) == False {
		t.Fatalf("Ands folded wrongly")
	}
	if n.Ors(a, False) != a {
		t.Fatalf("Ors identity wrong")
	}
}

func TestLatchRoundtrip(t *testing.T) {
	n := New("t")
	q := n.NewLatch("q", Init1)
	d := n.NewInput("d")
	n.SetNext(q, d)
	l := n.LatchOf(q.Node())
	if l == nil || l.Next != d || l.Init != Init1 || l.Name != "q" {
		t.Fatalf("latch record wrong: %+v", l)
	}
}

func TestSetNextPanics(t *testing.T) {
	n := New("t")
	q := n.NewLatch("q", Init0)
	defer func() {
		if recover() == nil {
			t.Fatalf("SetNext on complemented literal must panic")
		}
	}()
	n.SetNext(q.Not(), False)
}

func TestMemoryPorts(t *testing.T) {
	n := New("t")
	m := n.NewMemory("ram", 4, 8, MemZero)
	if m.Words() != 16 {
		t.Fatalf("Words wrong")
	}
	addr := make([]Lit, 4)
	data := make([]Lit, 8)
	for i := range addr {
		addr[i] = n.NewInput("")
	}
	for i := range data {
		data[i] = n.NewInput("")
	}
	en := n.NewInput("we")
	n.NewWritePort(m, addr, data, en)
	rp := n.NewReadPort(m)
	n.SetReadAddr(m, rp, addr, en)
	if len(m.Writes) != 1 || len(m.Reads) != 1 {
		t.Fatalf("port counts wrong")
	}
	if len(rp.Data) != 8 {
		t.Fatalf("read data width wrong")
	}
	for _, id := range rp.Data {
		if n.NodeAt(id).Kind != KMemRead {
			t.Fatalf("read data node kind wrong")
		}
	}
	if len(rp.DataLits()) != 8 {
		t.Fatalf("DataLits width wrong")
	}
}

func TestMemoryGeometryPanics(t *testing.T) {
	n := New("t")
	for _, g := range [][2]int{{0, 8}, {31, 8}, {4, 0}, {4, 65}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("geometry %v must panic", g)
				}
			}()
			n.NewMemory("bad", g[0], g[1], MemZero)
		}()
	}
}

func TestWritePortWidthPanics(t *testing.T) {
	n := New("t")
	m := n.NewMemory("ram", 4, 8, MemZero)
	defer func() {
		if recover() == nil {
			t.Fatalf("wrong address width must panic")
		}
	}()
	n.NewWritePort(m, []Lit{True}, make([]Lit, 8), True)
}

func TestSupportLatches(t *testing.T) {
	n := New("t")
	q1 := n.NewLatch("q1", Init0)
	q2 := n.NewLatch("q2", Init0)
	q3 := n.NewLatch("q3", Init0)
	a := n.NewInput("a")
	f := n.And(q1, n.Or(a, q2)) // depends on q1, q2 but not q3
	sup := n.SupportLatches(f)
	if !sup[q1.Node()] || !sup[q2.Node()] || sup[q3.Node()] {
		t.Fatalf("support wrong: %v", sup)
	}
}

func TestMemReadIsCutPoint(t *testing.T) {
	n := New("t")
	q := n.NewLatch("q", Init0)
	m := n.NewMemory("ram", 2, 2, MemZero)
	rp := n.NewReadPort(m)
	addr := []Lit{q, q}
	n.SetReadAddr(m, rp, addr, True)
	// Logic on read data: its latch support must be empty (cut point),
	// even though the read address depends on q.
	f := n.And(rp.DataLits()[0], rp.DataLits()[1])
	sup := n.SupportLatches(f)
	if len(sup) != 0 {
		t.Fatalf("mem read must be a cut point, got support %v", sup)
	}
}

func TestMemoryControlLatches(t *testing.T) {
	n := New("t")
	qa := n.NewLatch("qa", Init0)
	qd := n.NewLatch("qd", Init0)
	qu := n.NewLatch("unused", Init0)
	_ = qu
	m := n.NewMemory("ram", 1, 1, MemZero)
	n.NewWritePort(m, []Lit{qa}, []Lit{qd}, True)
	rp := n.NewReadPort(m)
	n.SetReadAddr(m, rp, []Lit{qa}, True)
	ctl := n.MemoryControlLatches(m)
	if !ctl[qa.Node()] || !ctl[qd.Node()] {
		t.Fatalf("control latches missing: %v", ctl)
	}
	if ctl[qu.Node()] {
		t.Fatalf("unrelated latch in control set")
	}
}

func TestStats(t *testing.T) {
	n := New("t")
	n.NewInput("a")
	n.NewLatch("q", Init0)
	a, b := n.NewInput("x"), n.NewInput("y")
	n.And(a, b)
	m := n.NewMemory("ram", 3, 4, MemZero)
	_ = m
	s := n.Stats()
	if s.Inputs != 3 || s.Latches != 1 || s.Ands != 1 || s.Memories != 1 {
		t.Fatalf("stats wrong: %+v", s)
	}
	if s.MemBits != 8*4 {
		t.Fatalf("mem bits wrong: %d", s.MemBits)
	}
	if s.String() == "" {
		t.Fatalf("empty stats string")
	}
}

func TestLitHelpers(t *testing.T) {
	l := MkLit(7, true)
	if l.Node() != 7 || !l.Inverted() {
		t.Fatalf("MkLit roundtrip wrong")
	}
	if l.Not().Inverted() {
		t.Fatalf("Not wrong")
	}
	if l.XorInv(false) != l || l.XorInv(true) != l.Not() {
		t.Fatalf("XorInv wrong")
	}
	if False.String() != "0" || True.String() != "1" {
		t.Fatalf("const String wrong")
	}
}

func TestKindAndInitStrings(t *testing.T) {
	for _, k := range []Kind{KConst, KInput, KLatch, KAnd, KMemRead} {
		if k.String() == "?" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if Init0.String() != "0" || Init1.String() != "1" || InitX.String() != "x" {
		t.Fatalf("Init strings wrong")
	}
	for _, m := range []MemInit{MemZero, MemArbitrary, MemImage} {
		if m.String() == "" {
			t.Fatalf("MemInit %d has no name", m)
		}
	}
}

// TestAndIdempotentProperty: And over random literal pairs is order
// independent and never allocates duplicate gates.
func TestAndIdempotentProperty(t *testing.T) {
	n := New("t")
	var inputs []Lit
	for i := 0; i < 8; i++ {
		inputs = append(inputs, n.NewInput(""))
	}
	rng := rand.New(rand.NewSource(7))
	f := func() bool {
		a := inputs[rng.Intn(len(inputs))].XorInv(rng.Intn(2) == 1)
		b := inputs[rng.Intn(len(inputs))].XorInv(rng.Intn(2) == 1)
		return n.And(a, b) == n.And(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestConstraintAndProperty(t *testing.T) {
	n := New("t")
	a := n.NewInput("a")
	n.AddProperty("p0", a)
	n.AddConstraint(a.Not())
	if len(n.Props) != 1 || n.Props[0].Name != "p0" {
		t.Fatalf("property registration wrong")
	}
	if len(n.Constraints) != 1 {
		t.Fatalf("constraint registration wrong")
	}
}

func TestInputNames(t *testing.T) {
	n := New("t")
	a := n.NewInput("clk_en")
	if n.InputName(a.Node()) != "clk_en" {
		t.Fatalf("input name lost")
	}
	b := n.NewInput("")
	if n.InputName(b.Node()) != "" {
		t.Fatalf("unnamed input should have empty name")
	}
}
