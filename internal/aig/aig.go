// Package aig provides an and-inverter-graph netlist for sequential designs
// with first-class embedded memory modules.
//
// A netlist is a DAG of 2-input AND nodes over primary inputs, latches, the
// constant FALSE, and memory read-data nodes; inversion is encoded on edges
// (complemented literals). Latches have a next-state function and an initial
// value (0, 1 or X). Memory modules are declared with address/data widths and
// any number of read and write ports; their port nets (address, enable,
// write-data) are ordinary literals of the netlist, while read-data bits are
// dedicated nodes whose value is defined by the memory semantics — either by
// EMM constraints (package core), by explicit expansion into latches
// (package expmem), or by concrete simulation (package sim).
package aig

import "fmt"

// NodeID identifies a node in the netlist. Node 0 is the constant FALSE.
type NodeID int32

// Lit is a possibly-complemented reference to a node: lit = 2*node + inv.
type Lit int32

// Constant literals.
const (
	False Lit = 0 // constant-false literal (node 0, plain)
	True  Lit = 1 // constant-true literal (node 0, complemented)
)

// MkLit builds a literal referring to node n, complemented when inv is true.
func MkLit(n NodeID, inv bool) Lit {
	l := Lit(n) << 1
	if inv {
		l |= 1
	}
	return l
}

// Node returns the node the literal refers to.
func (l Lit) Node() NodeID { return NodeID(l >> 1) }

// Inverted reports whether the literal is complemented.
func (l Lit) Inverted() bool { return l&1 != 0 }

// Not returns the complement of l.
func (l Lit) Not() Lit { return l ^ 1 }

// XorInv complements l when inv is true.
func (l Lit) XorInv(inv bool) Lit {
	if inv {
		return l ^ 1
	}
	return l
}

// String renders the literal for debugging.
func (l Lit) String() string {
	switch l {
	case False:
		return "0"
	case True:
		return "1"
	}
	if l.Inverted() {
		return fmt.Sprintf("!n%d", l.Node())
	}
	return fmt.Sprintf("n%d", l.Node())
}

// Kind classifies netlist nodes.
type Kind uint8

// Node kinds.
const (
	KConst   Kind = iota // the constant FALSE (node 0 only)
	KInput               // primary input
	KLatch               // state element
	KAnd                 // 2-input AND gate
	KMemRead             // one bit of a memory read-data bus
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KConst:
		return "const"
	case KInput:
		return "input"
	case KLatch:
		return "latch"
	case KAnd:
		return "and"
	case KMemRead:
		return "memread"
	}
	return "?"
}

// Node is one vertex of the graph. F0/F1 are meaningful for KAnd only.
type Node struct {
	Kind   Kind
	F0, F1 Lit
}

// Init is a latch initial value.
type Init uint8

// Latch initial values.
const (
	Init0 Init = iota // reset to 0
	Init1             // reset to 1
	InitX             // unconstrained initial value
)

// String names the init value.
func (i Init) String() string {
	switch i {
	case Init0:
		return "0"
	case Init1:
		return "1"
	}
	return "x"
}

// Latch is a state element. Next is assigned via Netlist.SetNext after all
// combinational logic has been built.
type Latch struct {
	Node NodeID
	Next Lit
	Init Init
	Name string
}

// MemInit describes how a memory array is initialized.
type MemInit uint8

// Memory initialization modes.
const (
	MemZero      MemInit = iota // every word starts at 0
	MemArbitrary                // unconstrained initial contents
	MemImage                    // initialized from Memory.Image
)

// String names the memory init mode.
func (m MemInit) String() string {
	switch m {
	case MemZero:
		return "zero"
	case MemArbitrary:
		return "arbitrary"
	}
	return "image"
}

// WritePort is a synchronous write port: when En holds at cycle t, word
// Data is stored at Addr and becomes visible to reads from cycle t+1 on.
type WritePort struct {
	Addr []Lit // AW bits, LSB first
	Data []Lit // DW bits, LSB first
	En   Lit
}

// ReadPort is an asynchronous (same-cycle) read port: when En holds, Data
// carries the word most recently written at Addr (or the initial contents).
// When En is low, Data is unconstrained.
type ReadPort struct {
	Addr []Lit
	En   Lit
	Data []NodeID // KMemRead nodes, DW of them, LSB first
}

// DataLits returns the read-data bus as plain literals.
func (rp *ReadPort) DataLits() []Lit {
	out := make([]Lit, len(rp.Data))
	for i, n := range rp.Data {
		out[i] = MkLit(n, false)
	}
	return out
}

// Memory is an embedded memory module with R read and W write ports.
type Memory struct {
	Name   string
	AW, DW int
	Init   MemInit
	Image  []uint64 // initial contents when Init == MemImage (len 2^AW)
	Writes []*WritePort
	Reads  []*ReadPort
}

// Words returns the number of addressable words, 2^AW.
func (m *Memory) Words() int { return 1 << uint(m.AW) }

// Property is a safety property: OK must hold in every reachable cycle.
type Property struct {
	Name string
	OK   Lit
}

// Netlist is a sequential circuit.
type Netlist struct {
	Name     string
	nodes    []Node
	Inputs   []NodeID
	Latches  []*Latch
	Memories []*Memory
	Props    []Property
	// Constraints are literals assumed to hold in every cycle (environment
	// assumptions / proven invariants applied as constraints).
	Constraints []Lit

	inputName map[NodeID]string
	strash    map[[2]Lit]NodeID
	latchOf   map[NodeID]*Latch
}

// New creates an empty netlist containing only the constant node.
func New(name string) *Netlist {
	n := &Netlist{
		Name:      name,
		strash:    make(map[[2]Lit]NodeID),
		inputName: make(map[NodeID]string),
		latchOf:   make(map[NodeID]*Latch),
	}
	n.nodes = append(n.nodes, Node{Kind: KConst})
	return n
}

// NumNodes returns the number of nodes including the constant.
func (n *Netlist) NumNodes() int { return len(n.nodes) }

// NumAnds returns the number of AND gates.
func (n *Netlist) NumAnds() int {
	c := 0
	for i := range n.nodes {
		if n.nodes[i].Kind == KAnd {
			c++
		}
	}
	return c
}

// NodeAt returns the node with the given id.
func (n *Netlist) NodeAt(id NodeID) Node { return n.nodes[id] }

// Kind returns the kind of the node underlying l.
func (n *Netlist) Kind(l Lit) Kind { return n.nodes[l.Node()].Kind }

// LatchOf returns the latch record for a latch node, or nil.
func (n *Netlist) LatchOf(id NodeID) *Latch { return n.latchOf[id] }

// InputName returns the declared name of an input node ("" if unnamed).
func (n *Netlist) InputName(id NodeID) string { return n.inputName[id] }

func (n *Netlist) newNode(k Kind, f0, f1 Lit) NodeID {
	id := NodeID(len(n.nodes))
	n.nodes = append(n.nodes, Node{Kind: k, F0: f0, F1: f1})
	return id
}

// NewInput declares a primary input and returns its literal.
func (n *Netlist) NewInput(name string) Lit {
	id := n.newNode(KInput, 0, 0)
	n.Inputs = append(n.Inputs, id)
	if name != "" {
		n.inputName[id] = name
	}
	return MkLit(id, false)
}

// NewLatch declares a latch with the given reset value and returns its
// output literal. The next-state function must be set with SetNext before
// the netlist is used.
func (n *Netlist) NewLatch(name string, init Init) Lit {
	id := n.newNode(KLatch, 0, 0)
	l := &Latch{Node: id, Next: MkLit(id, false), Init: init, Name: name}
	n.Latches = append(n.Latches, l)
	n.latchOf[id] = l
	return MkLit(id, false)
}

// SetNext assigns the next-state function of a latch output literal. The
// literal must be a plain (non-complemented) latch output.
func (n *Netlist) SetNext(latchOut, next Lit) {
	if latchOut.Inverted() {
		panic("aig: SetNext on complemented literal")
	}
	l := n.latchOf[latchOut.Node()]
	if l == nil {
		panic("aig: SetNext on non-latch")
	}
	l.Next = next
}

// NewMemory declares a memory module with the given geometry. Ports are
// added with NewReadPort / NewWritePort.
func (n *Netlist) NewMemory(name string, aw, dw int, init MemInit) *Memory {
	if aw <= 0 || aw > 30 || dw <= 0 || dw > 64 {
		panic(fmt.Sprintf("aig: unsupported memory geometry AW=%d DW=%d", aw, dw))
	}
	m := &Memory{Name: name, AW: aw, DW: dw, Init: init}
	n.Memories = append(n.Memories, m)
	return m
}

// NewReadPort adds a read port to m and returns it. The port's Data nodes
// are allocated immediately (so logic may consume them); Addr and En must be
// assigned with SetReadAddr before use.
func (n *Netlist) NewReadPort(m *Memory) *ReadPort {
	rp := &ReadPort{En: False}
	rp.Data = make([]NodeID, m.DW)
	for i := range rp.Data {
		rp.Data[i] = n.newNode(KMemRead, 0, 0)
	}
	m.Reads = append(m.Reads, rp)
	return rp
}

// SetReadAddr wires the address and enable of a read port.
func (n *Netlist) SetReadAddr(m *Memory, rp *ReadPort, addr []Lit, en Lit) {
	if len(addr) != m.AW {
		panic(fmt.Sprintf("aig: read address width %d != AW %d", len(addr), m.AW))
	}
	rp.Addr = append([]Lit(nil), addr...)
	rp.En = en
}

// NewWritePort adds a write port to m.
func (n *Netlist) NewWritePort(m *Memory, addr, data []Lit, en Lit) *WritePort {
	if len(addr) != m.AW {
		panic(fmt.Sprintf("aig: write address width %d != AW %d", len(addr), m.AW))
	}
	if len(data) != m.DW {
		panic(fmt.Sprintf("aig: write data width %d != DW %d", len(data), m.DW))
	}
	wp := &WritePort{
		Addr: append([]Lit(nil), addr...),
		Data: append([]Lit(nil), data...),
		En:   en,
	}
	m.Writes = append(m.Writes, wp)
	return wp
}

// AddProperty registers a safety property "ok holds in every cycle".
func (n *Netlist) AddProperty(name string, ok Lit) {
	n.Props = append(n.Props, Property{Name: name, OK: ok})
}

// AddConstraint registers an environment constraint assumed every cycle.
func (n *Netlist) AddConstraint(c Lit) {
	n.Constraints = append(n.Constraints, c)
}

// And returns a literal for the conjunction of a and b, with constant
// folding and structural hashing.
func (n *Netlist) And(a, b Lit) Lit {
	// Constant and trivial folding.
	switch {
	case a == False || b == False:
		return False
	case a == True:
		return b
	case b == True:
		return a
	case a == b:
		return a
	case a == b.Not():
		return False
	}
	if a > b {
		a, b = b, a
	}
	key := [2]Lit{a, b}
	if id, ok := n.strash[key]; ok {
		return MkLit(id, false)
	}
	id := n.newNode(KAnd, a, b)
	n.strash[key] = id
	return MkLit(id, false)
}

// Not returns the complement of a.
func (n *Netlist) Not(a Lit) Lit { return a.Not() }

// Or returns a ∨ b.
func (n *Netlist) Or(a, b Lit) Lit { return n.And(a.Not(), b.Not()).Not() }

// Xor returns a ⊕ b.
func (n *Netlist) Xor(a, b Lit) Lit {
	return n.Or(n.And(a, b.Not()), n.And(a.Not(), b))
}

// Xnor returns a ≡ b.
func (n *Netlist) Xnor(a, b Lit) Lit { return n.Xor(a, b).Not() }

// Mux returns sel ? t : e.
func (n *Netlist) Mux(sel, t, e Lit) Lit {
	if t == e {
		return t
	}
	return n.Or(n.And(sel, t), n.And(sel.Not(), e))
}

// Implies returns a → b.
func (n *Netlist) Implies(a, b Lit) Lit { return n.Or(a.Not(), b) }

// Ands returns the conjunction of all literals (True for none).
func (n *Netlist) Ands(ls ...Lit) Lit {
	out := True
	for _, l := range ls {
		out = n.And(out, l)
	}
	return out
}

// Ors returns the disjunction of all literals (False for none).
func (n *Netlist) Ors(ls ...Lit) Lit {
	out := False
	for _, l := range ls {
		out = n.Or(out, l)
	}
	return out
}

// SupportLatches returns the set of latch nodes in the combinational
// transitive fanin of the given literals. Memory read-data nodes are treated
// as cut points (their cone is the memory's, not the main module's).
func (n *Netlist) SupportLatches(roots ...Lit) map[NodeID]bool {
	out := make(map[NodeID]bool)
	seen := make([]bool, len(n.nodes))
	var stack []NodeID
	push := func(l Lit) {
		id := l.Node()
		if !seen[id] {
			seen[id] = true
			stack = append(stack, id)
		}
	}
	for _, r := range roots {
		push(r)
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		switch n.nodes[id].Kind {
		case KLatch:
			out[id] = true
		case KAnd:
			push(n.nodes[id].F0)
			push(n.nodes[id].F1)
		}
	}
	return out
}

// MemoryControlLatches returns, for each memory, the set of latches in the
// combinational fanin of that memory's interface signals (all ports'
// addresses, enables, and write data). Used by PBA to decide whether a
// memory module is relevant at a given analysis depth (§4.3).
func (n *Netlist) MemoryControlLatches(m *Memory) map[NodeID]bool {
	var roots []Lit
	for _, wp := range m.Writes {
		roots = append(roots, wp.Addr...)
		roots = append(roots, wp.Data...)
		roots = append(roots, wp.En)
	}
	for _, rp := range m.Reads {
		roots = append(roots, rp.Addr...)
		roots = append(roots, rp.En)
	}
	return n.SupportLatches(roots...)
}

// PortControlLatches returns the latch support of one read or write port's
// interface signals.
func (n *Netlist) PortControlLatches(addr []Lit, en Lit, data []Lit) map[NodeID]bool {
	roots := append(append([]Lit{en}, addr...), data...)
	return n.SupportLatches(roots...)
}

// Stats summarizes the netlist, mirroring how the paper reports design
// sizes ("X latches, Y inputs, ~Z 2-input gates").
type Stats struct {
	Inputs   int
	Latches  int
	Ands     int
	Memories int
	MemBits  int // total memory bits if expanded explicitly
}

// Stats computes netlist statistics.
func (n *Netlist) Stats() Stats {
	s := Stats{
		Inputs:   len(n.Inputs),
		Latches:  len(n.Latches),
		Ands:     n.NumAnds(),
		Memories: len(n.Memories),
	}
	for _, m := range n.Memories {
		s.MemBits += m.Words() * m.DW
	}
	return s
}

// String renders the stats like the paper's design descriptions.
func (s Stats) String() string {
	return fmt.Sprintf("%d latches, %d inputs, %d 2-input gates, %d memories (%d bits)",
		s.Latches, s.Inputs, s.Ands, s.Memories, s.MemBits)
}
