// Package rtl is a word-level design-entry layer over package aig: a small
// Verilog-like construction API for registers, buses, arithmetic,
// comparisons, multiplexers, finite-state machines, and embedded memory
// ports. The paper's case studies (quicksort machine, image filter,
// multi-port lookup engine) are written against this package and compile to
// plain and-inverter netlists.
package rtl

import (
	"fmt"

	"emmver/internal/aig"
)

// Vec is a bus: a slice of literals, least-significant bit first.
type Vec []aig.Lit

// Width returns the number of bits in the bus.
func (v Vec) Width() int { return len(v) }

// Module wraps a netlist under construction.
type Module struct {
	N *aig.Netlist
}

// NewModule creates an empty design.
func NewModule(name string) *Module {
	return &Module{N: aig.New(name)}
}

// Const builds a width-bit constant bus holding value.
func (m *Module) Const(width int, value uint64) Vec {
	if width <= 0 || width > 64 {
		panic(fmt.Sprintf("rtl: bad constant width %d", width))
	}
	v := make(Vec, width)
	for i := 0; i < width; i++ {
		if value>>uint(i)&1 == 1 {
			v[i] = aig.True
		} else {
			v[i] = aig.False
		}
	}
	return v
}

// Input declares a width-bit primary-input bus.
func (m *Module) Input(name string, width int) Vec {
	v := make(Vec, width)
	for i := range v {
		v[i] = m.N.NewInput(fmt.Sprintf("%s[%d]", name, i))
	}
	return v
}

// InputBit declares a single-bit primary input.
func (m *Module) InputBit(name string) aig.Lit { return m.N.NewInput(name) }

// Reg is a register (a bus of latches) whose next-state is assigned with
// SetNext or updated conditionally with Update.
type Reg struct {
	m    *Module
	Q    Vec // current value
	next Vec // accumulated next-state expression
	set  bool
}

// Register declares a width-bit register initialized to init.
func (m *Module) Register(name string, width int, init uint64) *Reg {
	r := &Reg{m: m, Q: make(Vec, width)}
	for i := 0; i < width; i++ {
		iv := aig.Init0
		if init>>uint(i)&1 == 1 {
			iv = aig.Init1
		}
		r.Q[i] = m.N.NewLatch(fmt.Sprintf("%s[%d]", name, i), iv)
	}
	r.next = append(Vec(nil), r.Q...) // default: hold
	return r
}

// RegisterX declares a register with an unconstrained initial value.
func (m *Module) RegisterX(name string, width int) *Reg {
	r := &Reg{m: m, Q: make(Vec, width)}
	for i := 0; i < width; i++ {
		r.Q[i] = m.N.NewLatch(fmt.Sprintf("%s[%d]", name, i), aig.InitX)
	}
	r.next = append(Vec(nil), r.Q...)
	return r
}

// BitReg declares a 1-bit register and returns it.
func (m *Module) BitReg(name string, init bool) *Reg {
	iv := uint64(0)
	if init {
		iv = 1
	}
	return m.Register(name, 1, iv)
}

// Bit returns bit 0 of the register (for 1-bit registers).
func (r *Reg) Bit() aig.Lit { return r.Q[0] }

// SetNext assigns the full next-state expression, replacing the default
// hold behavior and any prior Update calls.
func (r *Reg) SetNext(v Vec) {
	if len(v) != len(r.Q) {
		panic("rtl: SetNext width mismatch")
	}
	r.next = append(Vec(nil), v...)
	r.set = true
}

// Update makes the register load v when cond holds (later Update calls take
// priority over earlier ones, like later assignments in a Verilog always
// block).
func (r *Reg) Update(cond aig.Lit, v Vec) {
	if len(v) != len(r.Q) {
		panic("rtl: Update width mismatch")
	}
	r.next = r.m.MuxV(cond, v, r.next)
	r.set = true
}

// UpdateBit is Update for 1-bit registers.
func (r *Reg) UpdateBit(cond, v aig.Lit) { r.Update(cond, Vec{v}) }

// finalize wires the accumulated next-state into the latches.
func (r *Reg) finalize() {
	for i, q := range r.Q {
		r.m.N.SetNext(q, r.next[i])
	}
}

// Done finalizes all registers created through the module. It must be
// called exactly once, after all Update/SetNext calls.
func (m *Module) Done(regs ...*Reg) {
	for _, r := range regs {
		r.finalize()
	}
}

// --- bitwise logic ---

func checkSameWidth(op string, a, b Vec) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("rtl: %s width mismatch %d vs %d", op, len(a), len(b)))
	}
}

// NotV complements every bit.
func (m *Module) NotV(a Vec) Vec {
	out := make(Vec, len(a))
	for i := range a {
		out[i] = a[i].Not()
	}
	return out
}

// AndV is bitwise AND.
func (m *Module) AndV(a, b Vec) Vec {
	checkSameWidth("AndV", a, b)
	out := make(Vec, len(a))
	for i := range a {
		out[i] = m.N.And(a[i], b[i])
	}
	return out
}

// OrV is bitwise OR.
func (m *Module) OrV(a, b Vec) Vec {
	checkSameWidth("OrV", a, b)
	out := make(Vec, len(a))
	for i := range a {
		out[i] = m.N.Or(a[i], b[i])
	}
	return out
}

// XorV is bitwise XOR.
func (m *Module) XorV(a, b Vec) Vec {
	checkSameWidth("XorV", a, b)
	out := make(Vec, len(a))
	for i := range a {
		out[i] = m.N.Xor(a[i], b[i])
	}
	return out
}

// MuxV returns sel ? t : e, bitwise.
func (m *Module) MuxV(sel aig.Lit, t, e Vec) Vec {
	checkSameWidth("MuxV", t, e)
	out := make(Vec, len(t))
	for i := range t {
		out[i] = m.N.Mux(sel, t[i], e[i])
	}
	return out
}

// --- arithmetic ---

// AddC returns a+b+cin and the carry out (ripple-carry).
func (m *Module) AddC(a, b Vec, cin aig.Lit) (Vec, aig.Lit) {
	checkSameWidth("Add", a, b)
	out := make(Vec, len(a))
	c := cin
	for i := range a {
		out[i] = m.N.Xor(m.N.Xor(a[i], b[i]), c)
		c = m.N.Or(m.N.And(a[i], b[i]), m.N.And(c, m.N.Xor(a[i], b[i])))
	}
	return out, c
}

// Add returns a+b (mod 2^w).
func (m *Module) Add(a, b Vec) Vec {
	s, _ := m.AddC(a, b, aig.False)
	return s
}

// Sub returns a-b (mod 2^w).
func (m *Module) Sub(a, b Vec) Vec {
	s, _ := m.AddC(a, m.NotV(b), aig.True)
	return s
}

// Inc returns a+1.
func (m *Module) Inc(a Vec) Vec { return m.Add(a, m.Const(len(a), 1)) }

// Dec returns a-1.
func (m *Module) Dec(a Vec) Vec { return m.Sub(a, m.Const(len(a), 1)) }

// Mul returns a*b (mod 2^w, w = max width), via shift-and-add.
func (m *Module) Mul(a, b Vec) Vec {
	w := len(a)
	if len(b) > w {
		w = len(b)
	}
	a = m.ZeroExtend(a, w)
	b = m.ZeroExtend(b, w)
	acc := m.Const(w, 0)
	for i := 0; i < w; i++ {
		part := m.MuxV(b[i], m.ShlConst(a, i), m.Const(w, 0))
		acc = m.Add(acc, part)
	}
	return acc
}

// ShlV is a barrel left shift by a variable amount (zero filling; shifts
// ≥ width produce zero).
func (m *Module) ShlV(a, sh Vec) Vec {
	out := append(Vec(nil), a...)
	for i := 0; i < len(sh); i++ {
		k := 1 << uint(i)
		if k >= len(a) {
			// Any higher shift bit zeroes the result.
			out = m.MuxV(sh[i], m.Const(len(a), 0), out)
			continue
		}
		out = m.MuxV(sh[i], m.ShlConst(out, k), out)
	}
	return out
}

// ShrV is a barrel right shift by a variable amount.
func (m *Module) ShrV(a, sh Vec) Vec {
	out := append(Vec(nil), a...)
	for i := 0; i < len(sh); i++ {
		k := 1 << uint(i)
		if k >= len(a) {
			out = m.MuxV(sh[i], m.Const(len(a), 0), out)
			continue
		}
		out = m.MuxV(sh[i], m.ShrConst(out, k), out)
	}
	return out
}

// BitSelect returns a[idx] for a variable index (0 when idx is out of
// range). Bit positions not representable in idx's width are unreachable
// and excluded, so a narrow index never aliases high positions.
func (m *Module) BitSelect(a Vec, idx Vec) aig.Lit {
	out := aig.False
	for i := range a {
		if len(idx) < 64 && uint64(i) >= 1<<uint(len(idx)) {
			break
		}
		hit := m.EqConst(idx, uint64(i))
		out = m.N.Mux(hit, a[i], out)
	}
	return out
}

// --- comparison ---

// Eq returns a == b.
func (m *Module) Eq(a, b Vec) aig.Lit {
	checkSameWidth("Eq", a, b)
	out := aig.True
	for i := range a {
		out = m.N.And(out, m.N.Xnor(a[i], b[i]))
	}
	return out
}

// EqConst returns a == value.
func (m *Module) EqConst(a Vec, value uint64) aig.Lit {
	return m.Eq(a, m.Const(len(a), value))
}

// Ne returns a != b.
func (m *Module) Ne(a, b Vec) aig.Lit { return m.Eq(a, b).Not() }

// Ult returns a < b, unsigned.
func (m *Module) Ult(a, b Vec) aig.Lit {
	checkSameWidth("Ult", a, b)
	// a < b iff a - b borrows: compute a + ~b + 1 and invert carry out.
	_, c := m.AddC(a, m.NotV(b), aig.True)
	return c.Not()
}

// Ule returns a <= b, unsigned.
func (m *Module) Ule(a, b Vec) aig.Lit { return m.Ult(b, a).Not() }

// Ugt returns a > b, unsigned.
func (m *Module) Ugt(a, b Vec) aig.Lit { return m.Ult(b, a) }

// Uge returns a >= b, unsigned.
func (m *Module) Uge(a, b Vec) aig.Lit { return m.Ult(a, b).Not() }

// IsZero returns a == 0.
func (m *Module) IsZero(a Vec) aig.Lit {
	out := aig.True
	for _, l := range a {
		out = m.N.And(out, l.Not())
	}
	return out
}

// NonZero returns a != 0.
func (m *Module) NonZero(a Vec) aig.Lit { return m.IsZero(a).Not() }

// --- width adjustment ---

// ZeroExtend widens a to width bits with zeros.
func (m *Module) ZeroExtend(a Vec, width int) Vec {
	if width < len(a) {
		panic("rtl: ZeroExtend narrows")
	}
	out := append(Vec(nil), a...)
	for len(out) < width {
		out = append(out, aig.False)
	}
	return out
}

// Truncate keeps the low width bits of a.
func (m *Module) Truncate(a Vec, width int) Vec {
	if width > len(a) {
		panic("rtl: Truncate widens")
	}
	return append(Vec(nil), a[:width]...)
}

// Slice returns bits [lo, hi) of a.
func (m *Module) Slice(a Vec, lo, hi int) Vec {
	if lo < 0 || hi > len(a) || lo >= hi {
		panic("rtl: bad slice bounds")
	}
	return append(Vec(nil), a[lo:hi]...)
}

// Concat joins buses, first argument in the low bits.
func (m *Module) Concat(vs ...Vec) Vec {
	var out Vec
	for _, v := range vs {
		out = append(out, v...)
	}
	return out
}

// ShrConst shifts right by k bits, filling with zeros.
func (m *Module) ShrConst(a Vec, k int) Vec {
	out := make(Vec, len(a))
	for i := range out {
		if i+k < len(a) {
			out[i] = a[i+k]
		} else {
			out[i] = aig.False
		}
	}
	return out
}

// ShlConst shifts left by k bits, filling with zeros.
func (m *Module) ShlConst(a Vec, k int) Vec {
	out := make(Vec, len(a))
	for i := range out {
		if i-k >= 0 {
			out[i] = a[i-k]
		} else {
			out[i] = aig.False
		}
	}
	return out
}

// --- memory ---

// Mem is a handle over an embedded memory module.
type Mem struct {
	m   *Module
	Mod *aig.Memory
}

// Memory declares an embedded memory module.
func (m *Module) Memory(name string, aw, dw int, init aig.MemInit) *Mem {
	return &Mem{m: m, Mod: m.N.NewMemory(name, aw, dw, init)}
}

// Read adds a read port driven by addr/en and returns its data bus. The
// data is valid in the same cycle (asynchronous read), matching §2.3 of the
// paper.
func (mm *Mem) Read(addr Vec, en aig.Lit) Vec {
	rp := mm.m.N.NewReadPort(mm.Mod)
	mm.m.N.SetReadAddr(mm.Mod, rp, addr, en)
	return rp.DataLits()
}

// Write adds a write port. Written data is visible to reads from the next
// cycle on (synchronous write), matching §2.3 of the paper.
func (mm *Mem) Write(addr, data Vec, en aig.Lit) {
	mm.m.N.NewWritePort(mm.Mod, addr, data, en)
}

// --- FSM ---

// FSM is a finite-state machine helper: a state register plus transition
// accumulation via Goto.
type FSM struct {
	m   *Module
	Reg *Reg
}

// NewFSM declares a state register of the given width, starting in state
// initial.
func (m *Module) NewFSM(name string, width int, initial uint64) *FSM {
	return &FSM{m: m, Reg: m.Register(name, width, initial)}
}

// In returns a literal that holds when the machine is in state s.
func (f *FSM) In(s uint64) aig.Lit { return f.m.EqConst(f.Reg.Q, s) }

// Goto transitions to state s when the machine is in state from and cond
// holds.
func (f *FSM) Goto(from uint64, cond aig.Lit, to uint64) {
	g := f.m.N.And(f.In(from), cond)
	f.Reg.Update(g, f.m.Const(len(f.Reg.Q), to))
}

// GotoAlways transitions unconditionally out of state from.
func (f *FSM) GotoAlways(from, to uint64) { f.Goto(from, aig.True, to) }

// State returns the current state bus.
func (f *FSM) State() Vec { return f.Reg.Q }

// --- properties ---

// AssertAlways registers the safety property "ok holds in every cycle".
func (m *Module) AssertAlways(name string, ok aig.Lit) {
	m.N.AddProperty(name, ok)
}

// Assume registers an environment constraint applied in every cycle.
func (m *Module) Assume(c aig.Lit) { m.N.AddConstraint(c) }
