package rtl

import (
	"math/rand"
	"testing"

	"emmver/internal/aig"
	"emmver/internal/sim"
)

// evalHarness builds a module with two w-bit input buses and evaluates a
// combinational function of them over random values via the simulator.
type evalHarness struct {
	m    *Module
	a, b Vec
}

func newHarness(w int) *evalHarness {
	m := NewModule("h")
	return &evalHarness{m: m, a: m.Input("a", w), b: m.Input("b", w)}
}

func (h *evalHarness) inputs(av, bv uint64) map[aig.NodeID]bool {
	in := make(map[aig.NodeID]bool)
	for i, l := range h.a {
		in[l.Node()] = av>>uint(i)&1 == 1
	}
	for i, l := range h.b {
		in[l.Node()] = bv>>uint(i)&1 == 1
	}
	return in
}

func (h *evalHarness) evalVec(t *testing.T, v Vec, av, bv uint64) uint64 {
	t.Helper()
	s := sim.New(h.m.N)
	s.Begin(h.inputs(av, bv))
	return s.EvalVec(v)
}

func (h *evalHarness) evalBit(t *testing.T, l aig.Lit, av, bv uint64) bool {
	t.Helper()
	s := sim.New(h.m.N)
	s.Begin(h.inputs(av, bv))
	return s.Eval(l)
}

func TestArithmeticAgainstUint64(t *testing.T) {
	const w = 8
	h := newHarness(w)
	add := h.m.Add(h.a, h.b)
	sub := h.m.Sub(h.a, h.b)
	inc := h.m.Inc(h.a)
	dec := h.m.Dec(h.a)
	mask := uint64(1)<<w - 1
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 300; i++ {
		av, bv := rng.Uint64()&mask, rng.Uint64()&mask
		if got := h.evalVec(t, add, av, bv); got != (av+bv)&mask {
			t.Fatalf("add(%d,%d)=%d want %d", av, bv, got, (av+bv)&mask)
		}
		if got := h.evalVec(t, sub, av, bv); got != (av-bv)&mask {
			t.Fatalf("sub(%d,%d)=%d want %d", av, bv, got, (av-bv)&mask)
		}
		if got := h.evalVec(t, inc, av, bv); got != (av+1)&mask {
			t.Fatalf("inc(%d)=%d", av, got)
		}
		if got := h.evalVec(t, dec, av, bv); got != (av-1)&mask {
			t.Fatalf("dec(%d)=%d", av, got)
		}
	}
}

func TestComparisonsAgainstUint64(t *testing.T) {
	const w = 6
	h := newHarness(w)
	eq := h.m.Eq(h.a, h.b)
	ne := h.m.Ne(h.a, h.b)
	lt := h.m.Ult(h.a, h.b)
	le := h.m.Ule(h.a, h.b)
	gt := h.m.Ugt(h.a, h.b)
	ge := h.m.Uge(h.a, h.b)
	mask := uint64(1)<<w - 1
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 300; i++ {
		av, bv := rng.Uint64()&mask, rng.Uint64()&mask
		checks := []struct {
			name string
			lit  aig.Lit
			want bool
		}{
			{"eq", eq, av == bv},
			{"ne", ne, av != bv},
			{"lt", lt, av < bv},
			{"le", le, av <= bv},
			{"gt", gt, av > bv},
			{"ge", ge, av >= bv},
		}
		for _, c := range checks {
			if got := h.evalBit(t, c.lit, av, bv); got != c.want {
				t.Fatalf("%s(%d,%d)=%v want %v", c.name, av, bv, got, c.want)
			}
		}
	}
}

func TestBitwiseOps(t *testing.T) {
	const w = 8
	h := newHarness(w)
	and := h.m.AndV(h.a, h.b)
	or := h.m.OrV(h.a, h.b)
	xor := h.m.XorV(h.a, h.b)
	not := h.m.NotV(h.a)
	mask := uint64(1)<<w - 1
	rng := rand.New(rand.NewSource(44))
	for i := 0; i < 200; i++ {
		av, bv := rng.Uint64()&mask, rng.Uint64()&mask
		if got := h.evalVec(t, and, av, bv); got != av&bv {
			t.Fatalf("and wrong")
		}
		if got := h.evalVec(t, or, av, bv); got != av|bv {
			t.Fatalf("or wrong")
		}
		if got := h.evalVec(t, xor, av, bv); got != av^bv {
			t.Fatalf("xor wrong")
		}
		if got := h.evalVec(t, not, av, bv); got != ^av&mask {
			t.Fatalf("not wrong")
		}
	}
}

func TestMuxShiftSliceConcat(t *testing.T) {
	const w = 8
	h := newHarness(w)
	sel := h.m.InputBit("sel")
	mux := h.m.MuxV(sel, h.a, h.b)
	shr := h.m.ShrConst(h.a, 3)
	shl := h.m.ShlConst(h.a, 2)
	sl := h.m.Slice(h.a, 2, 6)
	cc := h.m.Concat(h.m.Slice(h.a, 0, 4), h.m.Slice(h.b, 0, 4))
	zx := h.m.ZeroExtend(h.m.Truncate(h.a, 4), 8)
	mask := uint64(1)<<w - 1
	rng := rand.New(rand.NewSource(45))
	for i := 0; i < 200; i++ {
		av, bv := rng.Uint64()&mask, rng.Uint64()&mask
		sv := rng.Intn(2) == 1
		in := h.inputs(av, bv)
		in[sel.Node()] = sv
		s := sim.New(h.m.N)
		s.Begin(in)
		want := bv
		if sv {
			want = av
		}
		if got := s.EvalVec(mux); got != want {
			t.Fatalf("mux wrong")
		}
		if got := s.EvalVec(shr); got != av>>3 {
			t.Fatalf("shr wrong: %d want %d", got, av>>3)
		}
		if got := s.EvalVec(shl); got != av<<2&mask {
			t.Fatalf("shl wrong")
		}
		if got := s.EvalVec(sl); got != av>>2&0xf {
			t.Fatalf("slice wrong")
		}
		if got := s.EvalVec(cc); got != av&0xf|(bv&0xf)<<4 {
			t.Fatalf("concat wrong")
		}
		if got := s.EvalVec(zx); got != av&0xf {
			t.Fatalf("zeroextend wrong")
		}
	}
}

func TestIsZeroNonZero(t *testing.T) {
	h := newHarness(4)
	z := h.m.IsZero(h.a)
	nz := h.m.NonZero(h.a)
	for av := uint64(0); av < 16; av++ {
		if got := h.evalBit(t, z, av, 0); got != (av == 0) {
			t.Fatalf("IsZero(%d)=%v", av, got)
		}
		if got := h.evalBit(t, nz, av, 0); got != (av != 0) {
			t.Fatalf("NonZero(%d)=%v", av, got)
		}
	}
}

func TestConstWidthAndValue(t *testing.T) {
	m := NewModule("t")
	c := m.Const(8, 0xA5)
	want := []aig.Lit{aig.True, aig.False, aig.True, aig.False, aig.False, aig.True, aig.False, aig.True}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("const bit %d wrong", i)
		}
	}
	if c.Width() != 8 {
		t.Fatalf("width wrong")
	}
}

func TestRegisterHoldAndUpdate(t *testing.T) {
	m := NewModule("t")
	en := m.InputBit("en")
	d := m.Input("d", 4)
	r := m.Register("r", 4, 9)
	r.Update(en, d)
	m.Done(r)

	s := sim.New(m.N)
	// Initial value is 9.
	s.Begin(nil)
	if got := s.EvalVec(r.Q); got != 9 {
		t.Fatalf("init value %d want 9", got)
	}
	// Hold when en=0.
	in := map[aig.NodeID]bool{en.Node(): false}
	for i, l := range d {
		in[l.Node()] = 5>>uint(i)&1 == 1
	}
	s.Step(in)
	s.Begin(nil)
	if got := s.EvalVec(r.Q); got != 9 {
		t.Fatalf("hold failed: %d", got)
	}
	// Load when en=1.
	in[en.Node()] = true
	s.Step(in)
	s.Begin(nil)
	if got := s.EvalVec(r.Q); got != 5 {
		t.Fatalf("load failed: %d", got)
	}
}

func TestUpdatePriority(t *testing.T) {
	m := NewModule("t")
	c1 := m.InputBit("c1")
	c2 := m.InputBit("c2")
	r := m.Register("r", 4, 0)
	r.Update(c1, m.Const(4, 1))
	r.Update(c2, m.Const(4, 2)) // later update wins
	m.Done(r)
	s := sim.New(m.N)
	s.Step(map[aig.NodeID]bool{c1.Node(): true, c2.Node(): true})
	s.Begin(nil)
	if got := s.EvalVec(r.Q); got != 2 {
		t.Fatalf("priority wrong: got %d want 2", got)
	}
}

func TestFSM(t *testing.T) {
	m := NewModule("t")
	go1 := m.InputBit("go")
	f := m.NewFSM("st", 2, 0)
	f.Goto(0, go1, 1)
	f.GotoAlways(1, 2)
	f.GotoAlways(2, 0)
	m.Done(f.Reg)
	s := sim.New(m.N)
	step := func(g bool) uint64 {
		s.Step(map[aig.NodeID]bool{go1.Node(): g})
		s.Begin(nil)
		return s.EvalVec(f.State())
	}
	if got := step(false); got != 0 {
		t.Fatalf("should stay in 0, got %d", got)
	}
	if got := step(true); got != 1 {
		t.Fatalf("should move to 1, got %d", got)
	}
	if got := step(false); got != 2 {
		t.Fatalf("should move to 2, got %d", got)
	}
	if got := step(false); got != 0 {
		t.Fatalf("should wrap to 0, got %d", got)
	}
}

func TestMemoryThroughSim(t *testing.T) {
	m := NewModule("t")
	we := m.InputBit("we")
	waddr := m.Input("waddr", 3)
	wdata := m.Input("wdata", 8)
	raddr := m.Input("raddr", 3)
	mem := m.Memory("ram", 3, 8, aig.MemZero)
	mem.Write(waddr, wdata, we)
	rd := mem.Read(raddr, aig.True)

	s := sim.New(m.N)
	in := make(map[aig.NodeID]bool)
	set := func(v Vec, val uint64) {
		for i, l := range v {
			in[l.Node()] = val>>uint(i)&1 == 1
		}
	}
	// Write 0xAB at address 5.
	in[we.Node()] = true
	set(waddr, 5)
	set(wdata, 0xAB)
	set(raddr, 5)
	s.Begin(in)
	if got := s.EvalVec(rd); got != 0 {
		t.Fatalf("read-before-write must see initial 0, got %#x", got)
	}
	s.Step(in)
	// Next cycle the data is visible.
	in[we.Node()] = false
	s.Begin(in)
	if got := s.EvalVec(rd); got != 0xAB {
		t.Fatalf("read after write got %#x want 0xAB", got)
	}
}

func TestWidthMismatchPanics(t *testing.T) {
	m := NewModule("t")
	a := m.Input("a", 4)
	b := m.Input("b", 5)
	cases := []func(){
		func() { m.Add(a, b) },
		func() { m.Eq(a, b) },
		func() { m.MuxV(aig.True, a, b) },
		func() { m.AndV(a, b) },
		func() { m.ZeroExtend(a, 2) },
		func() { m.Truncate(a, 9) },
		func() { m.Slice(a, 3, 2) },
		func() { m.Const(0, 0) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d must panic", i)
				}
			}()
			f()
		}()
	}
}

func TestRegisterXInitsUnconstrained(t *testing.T) {
	m := NewModule("t")
	r := m.RegisterX("r", 4)
	m.Done(r)
	for _, q := range r.Q {
		l := m.N.LatchOf(q.Node())
		if l.Init != aig.InitX {
			t.Fatalf("RegisterX latch must be InitX")
		}
	}
}

func TestAssertAssume(t *testing.T) {
	m := NewModule("t")
	a := m.InputBit("a")
	m.AssertAlways("p", a)
	m.Assume(a.Not())
	if len(m.N.Props) != 1 || len(m.N.Constraints) != 1 {
		t.Fatalf("assert/assume not registered")
	}
}

func TestBitRegHelpers(t *testing.T) {
	m := NewModule("t")
	c := m.InputBit("c")
	r := m.BitReg("flag", true)
	r.UpdateBit(c, aig.False)
	m.Done(r)
	s := sim.New(m.N)
	s.Begin(nil)
	if !s.Eval(r.Bit()) {
		t.Fatalf("BitReg init true lost")
	}
	s.Step(map[aig.NodeID]bool{c.Node(): true})
	s.Begin(nil)
	if s.Eval(r.Bit()) {
		t.Fatalf("UpdateBit failed")
	}
}

func TestMulAgainstUint64(t *testing.T) {
	const w = 6
	h := newHarness(w)
	prod := h.m.Mul(h.a, h.b)
	mask := uint64(1)<<w - 1
	rng := rand.New(rand.NewSource(50))
	for i := 0; i < 200; i++ {
		av, bv := rng.Uint64()&mask, rng.Uint64()&mask
		if got := h.evalVec(t, prod, av, bv); got != av*bv&mask {
			t.Fatalf("mul(%d,%d)=%d want %d", av, bv, got, av*bv&mask)
		}
	}
}

func TestMulMixedWidths(t *testing.T) {
	m := NewModule("t")
	a := m.Input("a", 3)
	b := m.Input("b", 6)
	prod := m.Mul(a, b)
	if prod.Width() != 6 {
		t.Fatalf("width %d want 6", prod.Width())
	}
}

func TestVariableShiftsAgainstUint64(t *testing.T) {
	const w = 8
	m := NewModule("t")
	a := m.Input("a", w)
	sh := m.Input("sh", 4)
	shl := m.ShlV(a, sh)
	shr := m.ShrV(a, sh)
	rng := rand.New(rand.NewSource(51))
	for i := 0; i < 200; i++ {
		av := rng.Uint64() & 0xff
		sv := rng.Uint64() & 0xf
		in := make(map[aig.NodeID]bool)
		for b, l := range a {
			in[l.Node()] = av>>uint(b)&1 == 1
		}
		for b, l := range sh {
			in[l.Node()] = sv>>uint(b)&1 == 1
		}
		s := sim.New(m.N)
		s.Begin(in)
		wantL, wantR := uint64(0), uint64(0)
		if sv < 64 {
			wantL = av << sv & 0xff
			wantR = av >> sv
		}
		if got := s.EvalVec(shl); got != wantL {
			t.Fatalf("shl(%#x,%d)=%#x want %#x", av, sv, got, wantL)
		}
		if got := s.EvalVec(shr); got != wantR {
			t.Fatalf("shr(%#x,%d)=%#x want %#x", av, sv, got, wantR)
		}
	}
}

func TestBitSelectAgainstUint64(t *testing.T) {
	const w = 8
	m := NewModule("t")
	a := m.Input("a", w)
	idx := m.Input("idx", 4)
	bit := m.BitSelect(a, idx)
	rng := rand.New(rand.NewSource(52))
	for i := 0; i < 200; i++ {
		av := rng.Uint64() & 0xff
		iv := rng.Uint64() & 0xf
		in := make(map[aig.NodeID]bool)
		for b, l := range a {
			in[l.Node()] = av>>uint(b)&1 == 1
		}
		for b, l := range idx {
			in[l.Node()] = iv>>uint(b)&1 == 1
		}
		s := sim.New(m.N)
		s.Begin(in)
		want := iv < w && av>>iv&1 == 1
		if got := s.Eval(bit); got != want {
			t.Fatalf("bitsel(%#x,%d)=%v want %v", av, iv, got, want)
		}
	}
}

func TestBitSelectNarrowIndexNoAliasing(t *testing.T) {
	// A 2-bit index over an 8-bit bus must never reach bits 4..7.
	m := NewModule("t")
	a := m.Input("a", 8)
	idx := m.Input("idx", 2)
	bit := m.BitSelect(a, idx)
	s := sim.New(m.N)
	in := make(map[aig.NodeID]bool)
	// a = 0xF0 (only high bits set), every index in range reads 0.
	for b, l := range a {
		in[l.Node()] = b >= 4
	}
	for iv := uint64(0); iv < 4; iv++ {
		for b, l := range idx {
			in[l.Node()] = iv>>uint(b)&1 == 1
		}
		s.Begin(in)
		if s.Eval(bit) {
			t.Fatalf("index %d aliased into the high half", iv)
		}
	}
}
