module emmver

go 1.22
